#include "redeye/energy_model.hh"

#include <cmath>

#include "analog/capacitor.hh"
#include "analog/comparator.hh"
#include "analog/mac_unit.hh"
#include "analog/memory_cell.hh"
#include "analog/noise_damping.hh"
#include "core/logging.hh"

namespace redeye {
namespace arch {

namespace {

/** MAC unit programmed to @p snr_db. */
analog::MacUnit
macAt(double snr_db, const analog::ProcessParams &process)
{
    analog::MacUnit mac(analog::MacParams{}, process);
    mac.setSnrDb(snr_db);
    return mac;
}

/** Buffer cell sized for @p snr_db fidelity. */
analog::MemoryCellParams
bufferCellAt(double snr_db)
{
    analog::MemoryCellParams p;
    p.holdCapF = analog::dampingCapForSnr(snr_db);
    return p;
}

} // namespace

RedEyeModel::RedEyeModel(Program program, RedEyeConfig config,
                         analog::ProcessParams process,
                         Calibration calibration)
    : program_(std::move(program)), config_(config), process_(process),
      calibration_(calibration)
{
    fatal_if(program_.empty(), "cannot model an empty program");
    fatal_if(config_.columns == 0, "column array cannot be empty");
    fatal_if(config_.frameRate <= 0.0, "frame rate must be positive");
}

double
RedEyeModel::macEnergyJ(double snr_db, std::size_t taps) const
{
    const auto mac = macAt(snr_db, process_);
    return calibration_.analogScale * mac.energyPerWindow(taps) /
           static_cast<double>(taps);
}

double
RedEyeModel::macCycleTimeS(double snr_db) const
{
    const auto mac = macAt(snr_db, process_);
    return calibration_.timingScale * mac.timePerWindow(8) /
           static_cast<double>(mac.macParams().inputs) * 8.0;
}

double
RedEyeModel::conversionEnergyJ() const
{
    // SAR switching + per-bit comparator energy, scaled by the
    // conservative survey-based readout calibration.
    const unsigned n = config_.adcBits;
    const double c_sigma = std::ldexp(process_.unitCapF,
                                      static_cast<int>(n));
    const double vref = process_.signalSwing;
    analog::ComparatorParams cmp;
    const double raw = c_sigma * vref * vref +
                       static_cast<double>(n) * cmp.energyPerDecisionJ;
    return calibration_.readoutScale * raw;
}

double
RedEyeModel::bufferAccessEnergyJ() const
{
    const auto cell_params = bufferCellAt(config_.convSnrDb);
    analog::AnalogMemoryCell cell(cell_params, process_);
    return calibration_.analogScale *
           (cell.writeEnergy() + cell.readEnergy());
}

FrameEstimate
RedEyeModel::estimateFrame() const
{
    FrameEstimate est;
    analog::ComparatorParams cmp_params;

    for (const auto &instr : program_.instructions()) {
        InstructionCost cost;
        cost.layer = instr.layer;
        cost.kind = instr.kind;

        // Active columns: one per output x position, capped by the
        // physical array width.
        const std::size_t active = std::max<std::size_t>(
            1, std::min(config_.columns, instr.outShape.w));

        switch (instr.kind) {
          case ModuleKind::Convolution: {
            const auto mac = macAt(instr.snrDb, process_);
            const std::size_t windows = instr.outShape.size();
            cost.energyJ = calibration_.analogScale *
                           mac.energyPerWindow(instr.taps) *
                           static_cast<double>(windows);
            est.energy.macJ += cost.energyJ;

            const double window_time =
                calibration_.timingScale *
                mac.timePerWindow(instr.taps);
            cost.timeS = window_time *
                         static_cast<double>(windows) /
                         static_cast<double>(active);
            break;
          }
          case ModuleKind::MaxPooling: {
            const double per_cmp = cmp_params.energyPerDecisionJ;
            cost.energyJ = calibration_.analogScale * per_cmp *
                           static_cast<double>(instr.comparisons);
            est.energy.comparatorJ += cost.energyJ;
            cost.timeS = cmp_params.nominalTimeS *
                         calibration_.timingScale *
                         static_cast<double>(instr.comparisons) /
                         static_cast<double>(active);
            break;
          }
          case ModuleKind::Quantization: {
            const double per_conv = conversionEnergyJ();
            cost.energyJ = per_conv *
                           static_cast<double>(instr.conversions);
            est.energy.readoutJ += cost.energyJ;
            const double t_conv =
                static_cast<double>(instr.adcBits + 1) *
                cmp_params.nominalTimeS * calibration_.timingScale;
            cost.timeS = t_conv *
                         static_cast<double>(instr.conversions) /
                         static_cast<double>(active);
            est.conversions += instr.conversions;
            break;
          }
          case ModuleKind::Buffer:
            break;
        }
        est.analogTimeS += cost.timeS;
        est.perInstruction.push_back(cost);
    }

    // Inter-stage buffer traffic (storage module).
    const auto cell_params = bufferCellAt(config_.convSnrDb);
    analog::AnalogMemoryCell cell(cell_params, process_);
    est.energy.memoryJ =
        calibration_.analogScale *
        (cell.writeEnergy() *
             static_cast<double>(program_.totalBufferWrites()) +
         cell.readEnergy() *
             static_cast<double>(program_.totalBufferReads()));

    // Digital controller: fixed power over the frame interval.
    const double ctrl_power = config_.controllerClockHz *
                              config_.controllerPowerPerHz;
    est.energy.controllerJ = ctrl_power / config_.frameRate;

    est.outputBytes = program_.outputBytes();
    return est;
}

double
imageSensorAnalogEnergyJ(std::size_t width, std::size_t height,
                         std::size_t channels, unsigned bits)
{
    fatal_if(bits < 1 || bits > 14, "unrealistic sensor bit depth ",
             bits);
    // Anchor: 10-bit 227x227x3 -> 1.1 mJ per frame (Section V-B),
    // i.e. 7.116 nJ per sample including the column amplifier. SAR
    // energy halves per bit removed.
    constexpr double anchor_per_sample = 1.1e-3 /
                                         (227.0 * 227.0 * 3.0);
    const double per_sample = anchor_per_sample *
                              std::ldexp(1.0,
                                         static_cast<int>(bits) - 10);
    return per_sample * static_cast<double>(width * height * channels);
}

double
imageSensorOutputBytes(std::size_t width, std::size_t height,
                       std::size_t channels, unsigned bits)
{
    return static_cast<double>(width * height * channels) *
           static_cast<double>(bits) / 8.0;
}

} // namespace arch
} // namespace redeye
