/**
 * @file
 * Run-time configuration of a RedEye device: the knobs a developer
 * loads into the program SRAM alongside the ConvNet definition
 * (Section III-C) plus the fixed platform constants of Section V-D.
 */

#ifndef REDEYE_REDEYE_CONFIG_HH
#define REDEYE_REDEYE_CONFIG_HH

#include <map>
#include <string>

namespace redeye {
namespace arch {

/** Device configuration. */
struct RedEyeConfig {
    /** ADC resolution of the quantization module (dynamic knob). */
    unsigned adcBits = 4;

    /** Default noise admission for convolutional modules [dB]. */
    double convSnrDb = 40.0;

    /**
     * Per-layer SNR overrides, keyed by network layer name; layers
     * absent here use convSnrDb.
     */
    std::map<std::string, double> layerSnrDb;

    /** Target frame rate [fps]. */
    double frameRate = 30.0;

    /** Central controller clock [Hz] (Section V-D: 250 MHz). */
    double controllerClockHz = 250e6;

    /**
     * Cortex-M0+ power/frequency ratio in 0.18 um [W/Hz]
     * (47.4 uW/MHz).
     */
    double controllerPowerPerHz = 47.4e-12;

    /** Columns in the array (one per pixel column). */
    std::size_t columns = 227;

    /** SNR programmed for a given layer. */
    double
    snrForLayer(const std::string &layer) const
    {
        auto it = layerSnrDb.find(layer);
        return it == layerSnrDb.end() ? convSnrDb : it->second;
    }
};

} // namespace arch
} // namespace redeye

#endif // REDEYE_REDEYE_CONFIG_HH
