#include "redeye/program_binary.hh"

#include <cstring>
#include <fstream>

#include "core/logging.hh"

namespace redeye {
namespace arch {

namespace {

constexpr std::uint32_t kMagic = 0x52455045; // "REPE"
constexpr std::uint32_t kVersion = 1;

class Writer
{
  public:
    explicit Writer(std::vector<std::uint8_t> &out) : out_(out) {}

    void
    u8(std::uint8_t v)
    {
        out_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        for (char c : s)
            out_.push_back(static_cast<std::uint8_t>(c));
    }

    void
    shape(const Shape &s)
    {
        u32(static_cast<std::uint32_t>(s.n));
        u32(static_cast<std::uint32_t>(s.c));
        u32(static_cast<std::uint32_t>(s.h));
        u32(static_cast<std::uint32_t>(s.w));
    }

  private:
    std::vector<std::uint8_t> &out_;
};

class Reader
{
  public:
    explicit Reader(const std::vector<std::uint8_t> &in) : in_(in) {}

    std::uint8_t
    u8()
    {
        need(1);
        return in_[pos_++];
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(in_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(in_[pos_++]) << (8 * i);
        return v;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const auto len = u32();
        need(len);
        std::string s(reinterpret_cast<const char *>(&in_[pos_]),
                      len);
        pos_ += len;
        return s;
    }

    Shape
    shape()
    {
        Shape s;
        s.n = u32();
        s.c = u32();
        s.h = u32();
        s.w = u32();
        return s;
    }

    bool
    done() const
    {
        return pos_ == in_.size();
    }

  private:
    void
    need(std::size_t n)
    {
        fatal_if(pos_ + n > in_.size(),
                 "truncated RedEye program image");
    }

    const std::vector<std::uint8_t> &in_;
    std::size_t pos_ = 0;
};

} // namespace

std::vector<std::uint8_t>
encodeProgram(const Program &program)
{
    std::vector<std::uint8_t> out;
    Writer w(out);
    w.u32(kMagic);
    w.u32(kVersion);
    w.u32(static_cast<std::uint32_t>(program.size()));

    for (const auto &i : program.instructions()) {
        w.u8(static_cast<std::uint8_t>(i.kind));
        w.str(i.layer);
        w.shape(i.inShape);
        w.shape(i.outShape);
        w.u32(static_cast<std::uint32_t>(i.kernelH));
        w.u32(static_cast<std::uint32_t>(i.kernelW));
        w.u32(static_cast<std::uint32_t>(i.strideH));
        w.u32(static_cast<std::uint32_t>(i.strideW));
        w.u32(static_cast<std::uint32_t>(i.padH));
        w.u32(static_cast<std::uint32_t>(i.padW));
        w.u64(i.taps);
        w.u64(i.macs);
        w.u8(i.rectify ? 1 : 0);
        w.u8(i.normalize ? 1 : 0);
        w.f64(i.snrDb);
        w.u32(static_cast<std::uint32_t>(i.poolKernel));
        w.u32(static_cast<std::uint32_t>(i.poolStride));
        w.u32(static_cast<std::uint32_t>(i.poolPad));
        w.u64(i.comparisons);
        w.u32(i.adcBits);
        w.u64(i.conversions);
        w.f64(i.kernelScale);
        w.f64(i.biasScale);
        w.u64(i.kernelBytes);
        w.u64(i.kernelImage.size());
        for (std::int8_t b : i.kernelImage)
            w.u8(static_cast<std::uint8_t>(b));
    }
    return out;
}

Program
decodeProgram(const std::vector<std::uint8_t> &image)
{
    Reader r(image);
    fatal_if(r.u32() != kMagic, "not a RedEye program image");
    fatal_if(r.u32() != kVersion,
             "unsupported program image version");
    const auto count = r.u32();

    Program prog;
    for (std::uint32_t k = 0; k < count; ++k) {
        Instruction i;
        const auto kind = r.u8();
        fatal_if(kind > static_cast<std::uint8_t>(
                            ModuleKind::Quantization),
                 "invalid module kind ", int(kind));
        i.kind = static_cast<ModuleKind>(kind);
        i.layer = r.str();
        i.inShape = r.shape();
        i.outShape = r.shape();
        i.kernelH = r.u32();
        i.kernelW = r.u32();
        i.strideH = r.u32();
        i.strideW = r.u32();
        i.padH = r.u32();
        i.padW = r.u32();
        i.taps = r.u64();
        i.macs = r.u64();
        i.rectify = r.u8() != 0;
        i.normalize = r.u8() != 0;
        i.snrDb = r.f64();
        i.poolKernel = r.u32();
        i.poolStride = r.u32();
        i.poolPad = r.u32();
        i.comparisons = r.u64();
        i.adcBits = r.u32();
        i.conversions = r.u64();
        i.kernelScale = r.f64();
        i.biasScale = r.f64();
        i.kernelBytes = r.u64();
        const auto kbytes = r.u64();
        i.kernelImage.reserve(kbytes);
        for (std::uint64_t b = 0; b < kbytes; ++b)
            i.kernelImage.push_back(
                static_cast<std::int8_t>(r.u8()));
        prog.append(std::move(i));
    }
    fatal_if(!r.done(), "trailing bytes in program image");
    return prog;
}

void
writeProgram(const Program &program, const std::string &path)
{
    const auto image = encodeProgram(program);
    std::ofstream os(path, std::ios::binary);
    fatal_if(!os, "cannot open '", path, "' for writing");
    os.write(reinterpret_cast<const char *>(image.data()),
             static_cast<std::streamsize>(image.size()));
    fatal_if(!os, "failed writing '", path, "'");
}

Program
readProgram(const std::string &path)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    fatal_if(!is, "cannot open '", path, "' for reading");
    const auto size = static_cast<std::size_t>(is.tellg());
    is.seekg(0);
    std::vector<std::uint8_t> image(size);
    is.read(reinterpret_cast<char *>(image.data()),
            static_cast<std::streamsize>(size));
    fatal_if(!is, "failed reading '", path, "'");
    return decodeProgram(image);
}

std::size_t
controlPlaneBytes(const Program &program)
{
    return encodeProgram(program).size() - program.kernelBytes();
}

} // namespace arch
} // namespace redeye
