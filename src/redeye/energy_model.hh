/**
 * @file
 * Analytic per-frame energy/timing model of a RedEye program.
 *
 * Combines the analog circuit primitives (src/analog) with the
 * compiled program's workload counts to estimate the quantities the
 * paper's evaluation charts: energy per frame with category
 * breakdown, analog processing time, and exported data size.
 */

#ifndef REDEYE_REDEYE_ENERGY_MODEL_HH
#define REDEYE_REDEYE_ENERGY_MODEL_HH

#include <string>
#include <vector>

#include "analog/process.hh"
#include "redeye/calibration.hh"
#include "redeye/config.hh"
#include "redeye/program.hh"

namespace redeye {
namespace arch {

/** Energy per frame by hardware category [J]. */
struct EnergyBreakdown {
    double macJ = 0.0;        ///< convolutional modules
    double memoryJ = 0.0;     ///< analog buffer traffic
    double comparatorJ = 0.0; ///< max pooling modules
    double readoutJ = 0.0;    ///< quantization module (SAR)
    double controllerJ = 0.0; ///< digital controller (Cortex-M0+)

    double
    totalJ() const
    {
        return macJ + memoryJ + comparatorJ + readoutJ + controllerJ;
    }

    /** Analog-only portion (what Fig. 7a compares against the IS). */
    double
    analogJ() const
    {
        return macJ + memoryJ + comparatorJ + readoutJ;
    }
};

/** Per-instruction cost attribution. */
struct InstructionCost {
    std::string layer;
    ModuleKind kind = ModuleKind::Buffer;
    double energyJ = 0.0;
    double timeS = 0.0;
};

/** Whole-frame estimate. */
struct FrameEstimate {
    EnergyBreakdown energy;
    double analogTimeS = 0.0;  ///< column-parallel processing time
    double outputBytes = 0.0;  ///< exported feature payload
    std::size_t conversions = 0;
    std::vector<InstructionCost> perInstruction;
};

/** Analytic RedEye device model. */
class RedEyeModel
{
  public:
    RedEyeModel(Program program, RedEyeConfig config,
                analog::ProcessParams process =
                    analog::ProcessParams::typical(),
                Calibration calibration = Calibration::paper());

    /** Estimate one frame under the current configuration. */
    FrameEstimate estimateFrame() const;

    /** Energy of one MAC at @p snr_db noise admission [J]. */
    double macEnergyJ(double snr_db, std::size_t taps) const;

    /** Scheduled time of one 8-input MAC cycle at @p snr_db [s]. */
    double macCycleTimeS(double snr_db) const;

    /** Energy of one SAR conversion at the configured q [J]. */
    double conversionEnergyJ() const;

    /** Energy of one buffer write + read pair [J]. */
    double bufferAccessEnergyJ() const;

    const Program &program() const { return program_; }

    const RedEyeConfig &config() const { return config_; }

    RedEyeConfig &config() { return config_; }

    const Calibration &calibration() const { return calibration_; }

  private:
    Program program_;
    RedEyeConfig config_;
    analog::ProcessParams process_;
    Calibration calibration_;
};

/**
 * The paper's conventional-image-sensor comparison point: analog
 * readout energy of an n-bit WxH color sensor, calibrated so the
 * 10-bit 227x227 baseline consumes 1.1 mJ per frame. Scaling with
 * resolution follows SAR energy (~2x per bit).
 */
double imageSensorAnalogEnergyJ(std::size_t width, std::size_t height,
                                std::size_t channels, unsigned bits);

/** Output payload of a conventional sensor frame [bytes]. */
double imageSensorOutputBytes(std::size_t width, std::size_t height,
                              std::size_t channels, unsigned bits);

} // namespace arch
} // namespace redeye

#endif // REDEYE_REDEYE_ENERGY_MODEL_HH
