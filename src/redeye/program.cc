#include "redeye/program.hh"

#include <algorithm>
#include <sstream>

#include "core/logging.hh"

namespace redeye {
namespace arch {

const char *
moduleKindName(ModuleKind kind)
{
    switch (kind) {
      case ModuleKind::Buffer: return "buffer";
      case ModuleKind::Convolution: return "conv";
      case ModuleKind::MaxPooling: return "maxpool";
      case ModuleKind::Quantization: return "quantize";
    }
    return "?";
}

std::string
Instruction::str() const
{
    std::ostringstream oss;
    oss << moduleKindName(kind) << " '" << layer << "' "
        << inShape.str() << " -> " << outShape.str();
    switch (kind) {
      case ModuleKind::Convolution:
        oss << " k" << kernelH << "x" << kernelW << " s" << strideH
            << " p" << padH << " taps=" << taps << " macs=" << macs
            << " snr=" << snrDb << "dB";
        if (rectify)
            oss << " +rectify";
        if (normalize)
            oss << " +normalize";
        break;
      case ModuleKind::MaxPooling:
        oss << " k" << poolKernel << " s" << poolStride
            << " cmps=" << comparisons;
        break;
      case ModuleKind::Quantization:
        oss << " q=" << adcBits << "b conversions=" << conversions;
        break;
      case ModuleKind::Buffer:
        break;
    }
    return oss.str();
}

void
Program::append(Instruction instr)
{
    instrs_.push_back(std::move(instr));
}

std::size_t
Program::totalMacs() const
{
    std::size_t total = 0;
    for (const auto &i : instrs_)
        total += i.macs;
    return total;
}

std::size_t
Program::totalComparisons() const
{
    std::size_t total = 0;
    for (const auto &i : instrs_)
        total += i.comparisons;
    return total;
}

std::size_t
Program::totalBufferWrites() const
{
    std::size_t total = 0;
    for (const auto &i : instrs_) {
        if (i.kind != ModuleKind::Quantization)
            total += i.outShape.size();
    }
    return total;
}

std::size_t
Program::totalBufferReads() const
{
    std::size_t total = 0;
    for (const auto &i : instrs_)
        total += i.inShape.size();
    return total;
}

std::size_t
Program::kernelBytes() const
{
    std::size_t total = 0;
    for (const auto &i : instrs_)
        total += i.kernelBytes;
    return total;
}

std::size_t
Program::outputElements() const
{
    for (auto it = instrs_.rbegin(); it != instrs_.rend(); ++it) {
        if (it->kind == ModuleKind::Quantization)
            return it->conversions;
    }
    return instrs_.empty() ? 0 : instrs_.back().outShape.size();
}

double
Program::outputBytes() const
{
    for (auto it = instrs_.rbegin(); it != instrs_.rend(); ++it) {
        if (it->kind == ModuleKind::Quantization) {
            return static_cast<double>(it->conversions) *
                   static_cast<double>(it->adcBits) / 8.0;
        }
    }
    return 0.0;
}

std::size_t
Program::maxKernelWidth() const
{
    std::size_t best = 0;
    for (const auto &i : instrs_)
        best = std::max(best, std::max(i.kernelW, i.poolKernel));
    return best;
}

std::size_t
Program::convolutionCount() const
{
    std::size_t count = 0;
    for (const auto &i : instrs_) {
        if (i.kind == ModuleKind::Convolution)
            ++count;
    }
    return count;
}

std::string
Program::str() const
{
    std::ostringstream oss;
    oss << "redeye program: " << instrs_.size() << " instructions, "
        << totalMacs() << " MACs, " << kernelBytes()
        << " kernel bytes\n";
    for (std::size_t i = 0; i < instrs_.size(); ++i)
        oss << "  [" << i << "] " << instrs_[i].str() << "\n";
    return oss.str();
}

} // namespace arch
} // namespace redeye
