/**
 * @file
 * RedEye ConvNet program representation.
 *
 * A developer "writes a ConvNet program to the RedEye program SRAM of
 * the control plane" (Section III-C): the layer ordering, layer
 * dimensions, convolutional kernel weights, and noise parameters.
 * Program is that artifact — the unit the controller loads into the
 * cyclic signal flow. Instructions map one-to-one onto module
 * engagements of the cyclic pipeline.
 */

#ifndef REDEYE_REDEYE_PROGRAM_HH
#define REDEYE_REDEYE_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/shape.hh"

namespace redeye {
namespace arch {

/** RedEye module types (Figure 3). */
enum class ModuleKind {
    Buffer,       ///< analog storage module
    Convolution,  ///< 3-D convolutional module
    MaxPooling,   ///< max pooling module
    Quantization, ///< SAR ADC readout module
};

/** Human-readable module name. */
const char *moduleKindName(ModuleKind kind);

/** One module engagement in the cyclic pipeline. */
struct Instruction {
    ModuleKind kind = ModuleKind::Buffer;
    std::string layer; ///< originating network layer name

    Shape inShape;  ///< per-item input shape
    Shape outShape; ///< per-item output shape

    // Convolution fields.
    std::size_t kernelH = 0;
    std::size_t kernelW = 0;
    std::size_t strideH = 1;
    std::size_t strideW = 1;
    std::size_t padH = 0;
    std::size_t padW = 0;
    std::size_t taps = 0; ///< kernel taps per output (incl. channels)
    std::size_t macs = 0; ///< total MACs
    bool rectify = false;   ///< fold ReLU clip at max swing
    bool normalize = false; ///< fold local response normalization
    double snrDb = 40.0;    ///< programmed noise admission

    // Max pooling fields.
    std::size_t poolKernel = 0;
    std::size_t poolStride = 1;
    std::size_t poolPad = 0;
    std::size_t comparisons = 0;

    // Quantization fields.
    unsigned adcBits = 0;
    std::size_t conversions = 0;

    /** Kernel-weight bytes this instruction stores (8-bit weights). */
    std::size_t kernelBytes = 0;

    /**
     * The 8-bit fixed-point kernel image itself (weights then
     * biases), as issued to the tunable capacitors; size equals
     * kernelBytes for convolutions compiled from a network.
     */
    std::vector<std::int8_t> kernelImage;

    /** LSB scale of the quantized weights (weight = code * scale). */
    double kernelScale = 0.0;

    /** LSB scale of the quantized biases. */
    double biasScale = 0.0;

    /** One-line description. */
    std::string str() const;
};

/** A compiled RedEye program. */
class Program
{
  public:
    /** Append an instruction (compiler use). */
    void append(Instruction instr);

    const std::vector<Instruction> &instructions() const
    {
        return instrs_;
    }

    bool empty() const { return instrs_.empty(); }

    std::size_t size() const { return instrs_.size(); }

    const Instruction &at(std::size_t i) const { return instrs_.at(i); }

    /** Total MACs per frame. */
    std::size_t totalMacs() const;

    /** Total comparator decisions per frame. */
    std::size_t totalComparisons() const;

    /** Total buffer writes per frame (every produced value). */
    std::size_t totalBufferWrites() const;

    /** Total buffer reads per frame (every consumed value). */
    std::size_t totalBufferReads() const;

    /** Kernel-weight storage the program needs [bytes]. */
    std::size_t kernelBytes() const;

    /** Values crossing the A/D boundary per frame. */
    std::size_t outputElements() const;

    /** Output payload per frame [bytes] given the programmed ADC. */
    double outputBytes() const;

    /** Largest convolution kernel width (interconnect reach). */
    std::size_t maxKernelWidth() const;

    /** Number of convolution-module engagements. */
    std::size_t convolutionCount() const;

    /** Multi-line program listing. */
    std::string str() const;

  private:
    std::vector<Instruction> instrs_;
};

} // namespace arch
} // namespace redeye

#endif // REDEYE_REDEYE_PROGRAM_HH
