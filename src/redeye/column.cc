#include "redeye/column.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "core/logging.hh"

namespace redeye {
namespace arch {

namespace {

analog::MemoryCellParams
bufferParamsFor(double snr_db)
{
    analog::MemoryCellParams p;
    p.holdCapF = analog::dampingCapForSnr(snr_db);
    // The read buffer is sized with the rest of the fidelity mode:
    // its noise is kT/C-limited too.
    p.bufferNoiseRms *= std::sqrt(analog::kAnchorDampingCapF /
                                  p.holdCapF);
    return p;
}

} // namespace

ColumnArray::Column::Column(const ColumnArrayConfig &config,
                            const analog::ProcessParams &process,
                            Rng &rng)
    : mac(analog::MacParams{8, config.weightBits, 20e-15,
                            analog::OpAmpParams{}},
          process),
      buffer(bufferParamsFor(config.convSnrDb), process),
      comparator(analog::ComparatorParams{}, process),
      adc(analog::SarAdcParams{}, process, rng)
{
    mac.setSnrDb(config.convSnrDb);
    adc.setResolution(config.adcBits);
}

ColumnArray::ColumnArray(ColumnArrayConfig config,
                         analog::ProcessParams process, Rng rng)
    : config_(config), process_(process), rng_(rng)
{
    fatal_if(config_.columns == 0, "column array cannot be empty");
    fatal_if(config_.adcBits < 1 || config_.adcBits > 10,
             "ADC bits must be in [1, 10]");
    cols_.reserve(config_.columns);
    for (std::size_t i = 0; i < config_.columns; ++i)
        cols_.emplace_back(config_, process_, rng_);
}

void
ColumnArray::setConvSnrDb(double snr_db)
{
    config_.convSnrDb = snr_db;
    for (auto &col : cols_)
        col.mac.setSnrDb(snr_db);
}

void
ColumnArray::setAdcBits(unsigned bits)
{
    fatal_if(bits < 1 || bits > 10, "ADC bits must be in [1, 10]");
    config_.adcBits = bits;
    for (auto &col : cols_)
        col.adc.setResolution(bits);
}

void
ColumnArray::armFaults(const fault::FaultModel *faults,
                       std::uint64_t frame)
{
    fatal_if(faults && faults->columns() != cols_.size(),
             "fault model covers ", faults ? faults->columns() : 0,
             " columns, array has ", cols_.size());
    faults_ = faults;
    faultFrame_ = frame;
}

void
ColumnArray::setColumnMap(std::vector<std::size_t> map)
{
    for (std::size_t p : map) {
        fatal_if(p >= cols_.size(), "column map entry ", p,
                 " out of range for ", cols_.size(), " columns");
    }
    map_ = std::move(map);
}

const fault::ColumnFaults *
ColumnArray::activeFaults(std::size_t physical) const
{
    if (!faults_)
        return nullptr;
    const fault::ColumnFaults &f = faults_->column(physical);
    return f.activeAt(faultFrame_) ? &f : nullptr;
}

Tensor
ColumnArray::runConvolution(const Tensor &in,
                            nn::ConvolutionLayer &layer, bool rectify)
{
    const Shape &is = in.shape();
    fatal_if(is.n != 1, "functional engine runs one frame at a time");
    const Shape os = layer.outputShape({is});
    const auto &p = layer.convParams();
    fatal_if(p.groups != 1,
             "functional engine does not support grouped convolution");

    // Signal conditioning. The controller programs a per-layer gain
    // (feedback-capacitor sizing) so that the accumulated output
    // exercises, but does not exceed, the analog swing; we derive it
    // from the layer's digital reference range, as a calibration
    // pass would.
    const double swing = process_.signalSwing;
    const double in_scale = std::max(1e-12,
                                     static_cast<double>(in.absMax()));
    const Tensor &w = layer.weights();
    const double w_scale = std::max(
        1e-12, static_cast<double>(w.absMax()));
    const int w_max = (1 << (config_.weightBits - 1)) - 1;

    // Pre-quantize the kernel to integers.
    std::vector<int> wq(w.size());
    for (std::size_t i = 0; i < w.size(); ++i) {
        wq[i] = static_cast<int>(
            std::lround(w[i] / w_scale * static_cast<double>(w_max)));
    }

    // Output range estimate (value domain) for the gain setting.
    Tensor digital_ref;
    layer.forward({&in}, digital_ref);
    const double out_amax = std::max(
        1e-9, static_cast<double>(digital_ref.absMax()));

    // Input scaling into the MAC such that full-range outputs land
    // at +-swing: out_volts = sum (w_int / 2^(b-1)) * (k * value).
    const double denom = static_cast<double>(1 << (config_.weightBits -
                                                   1));
    const double k_in = denom * w_scale * swing /
                        (static_cast<double>(w_max) * out_amax);
    // The controller's gain calibration divides out the known
    // systematic settling/finite-gain attenuation of the MAC.
    const std::size_t taps = is.c * p.kernelH * p.kernelW;
    const double sys_gain =
        cols_.front().mac.systematicGain(taps);
    const double out_factor = out_amax / (swing * sys_gain);

    Tensor out(Shape(1, os.c, os.h, os.w));
    std::vector<double> window;
    std::vector<int> weights;
    window.reserve(taps);
    weights.reserve(taps);

    for (std::size_t oy = 0; oy < os.h; ++oy) {
        for (std::size_t ox = 0; ox < os.w; ++ox) {
            const std::size_t pcol = physicalFor(ox);
            Column &col = cols_[pcol];
            const fault::ColumnFaults *cf = activeFaults(pcol);
            for (std::size_t oc = 0; oc < os.c; ++oc) {
                window.clear();
                weights.clear();
                for (std::size_t ic = 0; ic < is.c; ++ic) {
                    for (std::size_t ky = 0; ky < p.kernelH; ++ky) {
                        const long iy = static_cast<long>(
                                            oy * p.strideH + ky) -
                                        static_cast<long>(p.padH);
                        for (std::size_t kx = 0; kx < p.kernelW;
                             ++kx) {
                            const long ix = static_cast<long>(
                                                ox * p.strideW + kx) -
                                            static_cast<long>(p.padW);
                            double v = 0.0;
                            if (iy >= 0 &&
                                iy < static_cast<long>(is.h) &&
                                ix >= 0 &&
                                ix < static_cast<long>(is.w)) {
                                // Buffered sample, bridged from the
                                // neighboring column's storage; the
                                // buffer holds full-swing samples.
                                // A leaky cell droops as if the
                                // sample had been held extra time.
                                const std::size_t psrc = physicalFor(
                                    static_cast<std::size_t>(ix));
                                Column &src = cols_[psrc];
                                const fault::ColumnFaults *sf =
                                    activeFaults(psrc);
                                const double value = in.at(
                                    0, ic,
                                    static_cast<std::size_t>(iy),
                                    static_cast<std::size_t>(ix));
                                src.buffer.write(
                                    value / in_scale * swing, rng_);
                                v = src.buffer.read(
                                        rng_,
                                        sf ? sf->extraHoldS : 0.0) *
                                    in_scale / swing;
                            }
                            window.push_back(v * k_in);
                            weights.push_back(
                                wq[w.shape().index(oc, ic, ky, kx)]);
                        }
                    }
                }
                if (cf && cf->weightStuckBit >= 0) {
                    // Stuck capacitor bit in this column's weight
                    // bank: the magnitude bit is forced for every
                    // weight the bank realizes.
                    const int bit = cf->weightStuckBit;
                    for (int &wv : weights) {
                        int mag = std::abs(wv);
                        if (cf->weightStuckHigh)
                            mag |= 1 << bit;
                        else
                            mag &= ~(1 << bit);
                        wv = wv < 0 ? -mag : mag;
                    }
                }
                double volts = col.mac.multiplyAccumulate(window,
                                                          weights,
                                                          rng_);
                if (p.bias)
                    volts += layer.biases()[oc] / out_factor;
                if (cf) {
                    volts += cf->offsetV;
                    if (cf->dead) {
                        // Railed op amp: the column always reports
                        // full positive swing. The MAC above still
                        // ran (it burns energy and consumes its
                        // noise draws), keeping healthy columns
                        // bit-identical to a fault-free run.
                        volts = swing;
                    }
                }
                // Physical clipping at the signal swing; rectified
                // layers clip at zero as well (folded ReLU).
                volts = std::clamp(volts, rectify ? 0.0 : -swing,
                                   swing);
                out.at(0, oc, oy, ox) =
                    static_cast<float>(volts * out_factor);
            }
        }
    }
    return out;
}

Tensor
ColumnArray::runMaxPool(const Tensor &in, const nn::MaxPoolLayer &layer)
{
    const Shape &is = in.shape();
    fatal_if(is.n != 1, "functional engine runs one frame at a time");
    const Shape os = layer.outputShape({is});
    const auto &p = layer.poolParams();

    const double swing = process_.signalSwing;
    const double in_scale = std::max(1e-12,
                                     static_cast<double>(in.absMax()));

    Tensor out(Shape(1, os.c, os.h, os.w));
    for (std::size_t oc = 0; oc < os.c; ++oc) {
        for (std::size_t oy = 0; oy < os.h; ++oy) {
            for (std::size_t ox = 0; ox < os.w; ++ox) {
                const std::size_t pcol = physicalFor(ox);
                Column &col = cols_[pcol];
                const fault::ColumnFaults *cf = activeFaults(pcol);
                bool have = false;
                double best = 0.0;
                for (std::size_t ky = 0; ky < p.kernel; ++ky) {
                    const long iy = static_cast<long>(oy * p.stride +
                                                      ky) -
                                    static_cast<long>(p.pad);
                    if (iy < 0 || iy >= static_cast<long>(is.h))
                        continue;
                    for (std::size_t kx = 0; kx < p.kernel; ++kx) {
                        const long ix = static_cast<long>(
                                            ox * p.stride + kx) -
                                        static_cast<long>(p.pad);
                        if (ix < 0 || ix >= static_cast<long>(is.w))
                            continue;
                        double v =
                            in.at(0, oc,
                                  static_cast<std::size_t>(iy),
                                  static_cast<std::size_t>(ix)) /
                            in_scale * swing;
                        if (!have) {
                            best = v;
                            have = true;
                            continue;
                        }
                        // Input-referred latch offset: the decision
                        // sees the challenger shifted, but the
                        // routed signal itself is unshifted.
                        const double seen =
                            cf ? v + cf->comparatorOffsetV : v;
                        const auto d = col.comparator.compare(seen,
                                                              best,
                                                              rng_);
                        best = d.aGreater ? v : best;
                    }
                }
                if (cf && cf->dead)
                    best = swing; // railed column
                out.at(0, oc, oy, ox) = static_cast<float>(
                    best * in_scale / swing);
            }
        }
    }
    return out;
}

Tensor
ColumnArray::runQuantization(const Tensor &in)
{
    const Shape &is = in.shape();
    fatal_if(is.n != 1, "functional engine runs one frame at a time");

    // Rectified features are non-negative; map [0, max] onto the ADC
    // range [0, vref].
    const double in_max = std::max(1e-12,
                                   static_cast<double>(in.absMax()));
    Tensor out(is);
    for (std::size_t c = 0; c < is.c; ++c) {
        for (std::size_t y = 0; y < is.h; ++y) {
            for (std::size_t x = 0; x < is.w; ++x) {
                const std::size_t pcol = physicalFor(x);
                Column &col = cols_[pcol];
                const fault::ColumnFaults *cf = activeFaults(pcol);
                const double v = std::max(
                    0.0, static_cast<double>(in.at(0, c, y, x)));
                double volts = v / in_max * col.adc.vref();
                if (cf && cf->dead)
                    volts = col.adc.vref(); // railed input
                auto code = col.adc.convert(volts, rng_);
                if (cf && cf->adcStuckBit >= 0 &&
                    cf->adcStuckBit <
                        static_cast<int>(col.adc.resolution())) {
                    // Frozen SAR bit. Only bits the programmed
                    // resolution keeps in the array can stick; a
                    // stuck capacitor among the cut-off bits is
                    // harmless.
                    const std::uint32_t mask =
                        1u << cf->adcStuckBit;
                    code = cf->adcStuckHigh ? (code | mask)
                                            : (code & ~mask);
                }
                out.at(0, c, y, x) = static_cast<float>(
                    col.adc.reconstruct(code) / col.adc.vref() *
                    in_max);
            }
        }
    }
    return out;
}

EnergyBreakdown
ColumnArray::energy() const
{
    EnergyBreakdown e;
    for (const auto &col : cols_) {
        e.macJ += col.mac.energyJ();
        e.memoryJ += col.buffer.energyJ();
        e.comparatorJ += col.comparator.energyJ();
        e.readoutJ += col.adc.energyJ();
    }
    return e;
}

void
ColumnArray::resetEnergy()
{
    for (auto &col : cols_) {
        col.mac.resetEnergy();
        col.buffer.resetEnergy();
        col.comparator.resetEnergy();
        col.adc.resetEnergy();
    }
}

std::size_t
ColumnArray::forcedDecisions() const
{
    std::size_t total = 0;
    for (const auto &col : cols_)
        total += col.comparator.forcedCount();
    return total;
}

} // namespace arch
} // namespace redeye
