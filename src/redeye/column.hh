/**
 * @file
 * Column-parallel functional execution engine.
 *
 * The structural counterpart of the analytic energy model: a
 * ColumnArray instantiates per-column module circuits (buffer cells,
 * MAC, comparator, SAR ADC from src/analog) and routes real signal
 * values through them, one output row per timestep, with every
 * circuit-level noise and energy mechanism engaged. Output x
 * positions map onto columns; horizontally adjacent columns bridge
 * their buffered samples for kernel windows (Section III-B3).
 *
 * Used for bit-level validation (does the analog pipeline compute
 * the ConvNet?) and for measuring realized SNR against the
 * noise-layer abstraction.
 */

#ifndef REDEYE_REDEYE_COLUMN_HH
#define REDEYE_REDEYE_COLUMN_HH

#include <memory>
#include <vector>

#include "analog/comparator.hh"
#include "analog/mac_unit.hh"
#include "analog/memory_cell.hh"
#include "analog/sar_adc.hh"
#include "core/rng.hh"
#include "nn/conv.hh"
#include "nn/pool.hh"
#include "redeye/energy_model.hh"
#include "tensor/tensor.hh"

namespace redeye {
namespace arch {

/** Static configuration of the functional array. */
struct ColumnArrayConfig {
    std::size_t columns = 32;
    double convSnrDb = 40.0;
    unsigned weightBits = 8;
    unsigned adcBits = 4;
};

/** Column-parallel mixed-signal execution engine. */
class ColumnArray
{
  public:
    ColumnArray(ColumnArrayConfig config,
                analog::ProcessParams process, Rng rng);

    /**
     * Execute a convolution layer's arithmetic through the MAC
     * circuits. @p in is a single-item (1, C, H, W) tensor in value
     * domain; kernel weights are quantized to the array's digital
     * weight resolution on the fly.
     *
     * @param rectify Clip outputs at the rectified signal range
     * (the folded ReLU).
     */
    Tensor runConvolution(const Tensor &in,
                          nn::ConvolutionLayer &layer, bool rectify);

    /** Execute max pooling through the comparator circuits. */
    Tensor runMaxPool(const Tensor &in, const nn::MaxPoolLayer &layer);

    /**
     * Quantize through the per-column SAR ADCs and reconstruct to
     * value domain (what the host receives after bit alignment).
     */
    Tensor runQuantization(const Tensor &in);

    /** Reprogram the noise admission of the conv modules. */
    void setConvSnrDb(double snr_db);

    /** Reprogram the ADC resolution. */
    void setAdcBits(unsigned bits);

    /** Accrued energy by category since the last reset. */
    EnergyBreakdown energy() const;

    void resetEnergy();

    /** Comparator decisions forced by the metastability timeout. */
    std::size_t forcedDecisions() const;

    const ColumnArrayConfig &config() const { return config_; }

  private:
    /** Per-column circuit instances. */
    struct Column {
        Column(const ColumnArrayConfig &config,
               const analog::ProcessParams &process, Rng &rng);

        analog::MacUnit mac;
        analog::AnalogMemoryCell buffer;
        analog::DynamicComparator comparator;
        analog::SarAdc adc;
    };

    Column &columnFor(std::size_t x) { return cols_[x % cols_.size()]; }

    ColumnArrayConfig config_;
    analog::ProcessParams process_;
    Rng rng_;
    std::vector<Column> cols_;
};

} // namespace arch
} // namespace redeye

#endif // REDEYE_REDEYE_COLUMN_HH
