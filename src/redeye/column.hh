/**
 * @file
 * Column-parallel functional execution engine.
 *
 * The structural counterpart of the analytic energy model: a
 * ColumnArray instantiates per-column module circuits (buffer cells,
 * MAC, comparator, SAR ADC from src/analog) and routes real signal
 * values through them, one output row per timestep, with every
 * circuit-level noise and energy mechanism engaged. Output x
 * positions map onto columns; horizontally adjacent columns bridge
 * their buffered samples for kernel windows (Section III-B3).
 *
 * Used for bit-level validation (does the analog pipeline compute
 * the ConvNet?) and for measuring realized SNR against the
 * noise-layer abstraction.
 */

#ifndef REDEYE_REDEYE_COLUMN_HH
#define REDEYE_REDEYE_COLUMN_HH

#include <memory>
#include <vector>

#include "analog/comparator.hh"
#include "analog/mac_unit.hh"
#include "analog/memory_cell.hh"
#include "analog/sar_adc.hh"
#include "core/rng.hh"
#include "fault/fault_model.hh"
#include "nn/conv.hh"
#include "nn/pool.hh"
#include "redeye/energy_model.hh"
#include "tensor/tensor.hh"

namespace redeye {
namespace arch {

/** Static configuration of the functional array. */
struct ColumnArrayConfig {
    std::size_t columns = 32;
    double convSnrDb = 40.0;
    unsigned weightBits = 8;
    unsigned adcBits = 4;
};

/** Column-parallel mixed-signal execution engine. */
class ColumnArray
{
  public:
    ColumnArray(ColumnArrayConfig config,
                analog::ProcessParams process, Rng rng);

    /**
     * Execute a convolution layer's arithmetic through the MAC
     * circuits. @p in is a single-item (1, C, H, W) tensor in value
     * domain; kernel weights are quantized to the array's digital
     * weight resolution on the fly.
     *
     * @param rectify Clip outputs at the rectified signal range
     * (the folded ReLU).
     */
    Tensor runConvolution(const Tensor &in,
                          nn::ConvolutionLayer &layer, bool rectify);

    /** Execute max pooling through the comparator circuits. */
    Tensor runMaxPool(const Tensor &in, const nn::MaxPoolLayer &layer);

    /**
     * Quantize through the per-column SAR ADCs and reconstruct to
     * value domain (what the host receives after bit alignment).
     */
    Tensor runQuantization(const Tensor &in);

    /** Reprogram the noise admission of the conv modules. */
    void setConvSnrDb(double snr_db);

    /** Reprogram the ADC resolution. */
    void setAdcBits(unsigned bits);

    /**
     * Arm a fault campaign: every subsequent run consults @p faults
     * (one entry per physical column, so the model's column count
     * must match the array's) for faults active at frame index
     * @p frame. Passing nullptr disarms. With no model armed the
     * execution path is bit-identical to pristine silicon — the
     * fault hooks neither draw randomness nor alter any value.
     */
    void armFaults(const fault::FaultModel *faults,
                   std::uint64_t frame = 0);

    /** Armed fault model (nullptr when pristine). */
    const fault::FaultModel *faults() const { return faults_; }

    /**
     * Remap logical output positions onto physical columns: position
     * x is served by column map[x % map.size()] instead of
     * x % columns. The degradation policy uses this to steer work
     * (MACs, buffered samples, comparisons, conversions) off columns
     * the calibration probe flagged dead. An empty map restores the
     * identity mapping.
     */
    void setColumnMap(std::vector<std::size_t> map);

    const std::vector<std::size_t> &columnMap() const { return map_; }

    /** Accrued energy by category since the last reset. */
    EnergyBreakdown energy() const;

    void resetEnergy();

    /** Comparator decisions forced by the metastability timeout. */
    std::size_t forcedDecisions() const;

    const ColumnArrayConfig &config() const { return config_; }

  private:
    /** Per-column circuit instances. */
    struct Column {
        Column(const ColumnArrayConfig &config,
               const analog::ProcessParams &process, Rng &rng);

        analog::MacUnit mac;
        analog::AnalogMemoryCell buffer;
        analog::DynamicComparator comparator;
        analog::SarAdc adc;
    };

    /** Physical column serving logical position @p x. */
    std::size_t
    physicalFor(std::size_t x) const
    {
        return map_.empty() ? x % cols_.size() : map_[x % map_.size()];
    }

    Column &columnFor(std::size_t x) { return cols_[physicalFor(x)]; }

    /**
     * Faults of physical column @p physical active at the armed
     * frame, or nullptr when pristine (or not yet onset).
     */
    const fault::ColumnFaults *activeFaults(std::size_t physical) const;

    ColumnArrayConfig config_;
    analog::ProcessParams process_;
    Rng rng_;
    std::vector<Column> cols_;
    std::vector<std::size_t> map_; ///< logical->physical (empty = id)
    const fault::FaultModel *faults_ = nullptr;
    std::uint64_t faultFrame_ = 0;
};

} // namespace arch
} // namespace redeye

#endif // REDEYE_REDEYE_COLUMN_HH
