/**
 * @file
 * Cyclic pipeline scheduler (Section III-B2/B3).
 *
 * RedEye's controller "simultaneously pipes signal flow through
 * multiple modules": within one cycle of the module chain, a
 * convolutional module and the max-pooling module behind it operate
 * row-by-row in pipeline, advancing the processing window one row
 * per clocked timestep; the cyclic flow control then routes the
 * result back through the storage module for the next ConvNet layer
 * (the next cycle). Quantization drains concurrently with the final
 * cycle.
 *
 * The scheduler turns a compiled Program into that timeline: stage
 * row periods, per-cycle spans, the frame latency, the bottleneck
 * stage and module utilization — a finer-grained view than the
 * energy model's serialized time sum.
 */

#ifndef REDEYE_REDEYE_SCHEDULER_HH
#define REDEYE_REDEYE_SCHEDULER_HH

#include <string>
#include <vector>

#include "analog/process.hh"
#include "redeye/calibration.hh"
#include "redeye/config.hh"
#include "redeye/program.hh"

namespace redeye {
namespace arch {

/** Timing of one module engagement. */
struct StageTiming {
    std::string layer;
    ModuleKind kind = ModuleKind::Buffer;
    std::size_t cycle = 0;    ///< cyclic-reuse round it runs in
    std::size_t rows = 0;     ///< output rows (timesteps)
    double rowPeriodS = 0.0;  ///< time per output row
    double spanS = 0.0;       ///< rows * rowPeriod
};

/** Whole-frame schedule. */
struct ScheduleReport {
    std::vector<StageTiming> stages;
    std::size_t cycles = 0;      ///< cyclic-reuse rounds
    double frameLatencyS = 0.0;  ///< sum over rounds of slowest stage
    double busyConvS = 0.0;      ///< conv-module busy time
    double convUtilization = 0.0; ///< busyConv / frameLatency
    std::string bottleneckLayer;
    double bottleneckSpanS = 0.0;

    /** True if back-to-back frames sustain @p fps. */
    bool
    sustains(double fps) const
    {
        return frameLatencyS <= 1.0 / fps;
    }
};

/** Build the pipelined timeline of @p program. */
ScheduleReport scheduleProgram(
    const Program &program, const RedEyeConfig &config,
    const analog::ProcessParams &process =
        analog::ProcessParams::typical(),
    const Calibration &calibration = Calibration::paper());

/**
 * Module engagement of one cyclic round: which modules the flow
 * control engages, which it bypasses, and where the output routes
 * ("If any layer is unneeded in a ConvNet dataflow, the bypass flow
 * control of each module provides an alternate signal route to
 * circumvent the corresponding module", Section III-B2).
 */
struct RoundPlan {
    std::size_t round = 0;
    std::string convLayer;  ///< engaged convolution ("" = bypassed)
    std::string poolLayer;  ///< engaged pooling ("" = bypassed)
    bool convBypassed = true;
    bool poolBypassed = true;
    bool cyclicReturn = false; ///< output returns to storage module
    bool quantizeDrain = false; ///< readout drains this round
};

/** Derive the flow-control plan of @p program. */
std::vector<RoundPlan> flowPlan(const Program &program);

/** Render the plan as a small table (for program listings). */
std::string flowPlanStr(const std::vector<RoundPlan> &plan);

} // namespace arch
} // namespace redeye

#endif // REDEYE_REDEYE_SCHEDULER_HH
