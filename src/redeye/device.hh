/**
 * @file
 * RedEyeDevice: functional whole-partition execution.
 *
 * Drives the ColumnArray through every analog layer of a partitioned
 * network — convolutions (with folded ReLU), max pooling, LRN (weight
 * renormalization with module noise), concat routing — and exports
 * the quantized cut tensor, exactly what the host would retrieve from
 * the feature SRAM. Collects the realized energy breakdown alongside.
 *
 * Fault campaigns (src/fault) arm through armFaults(); with none
 * armed, execution is bit-identical to pristine silicon. tryRun()
 * surfaces malformed partitions as a typed core::Status instead of
 * exiting, so a serving runtime can fail one frame and keep going.
 */

#ifndef REDEYE_REDEYE_DEVICE_HH
#define REDEYE_REDEYE_DEVICE_HH

#include <map>
#include <string>
#include <vector>

#include "core/status.hh"
#include "redeye/column.hh"

namespace redeye {

namespace nn {
class Network;
}

namespace arch {

/** Result of a functional frame execution. */
struct DeviceRun {
    Tensor features;      ///< quantized cut tensor (value domain)
    EnergyBreakdown energy;
    std::size_t forcedDecisions = 0;
    std::vector<std::string> executedLayers;
};

/** Functional RedEye device. */
class RedEyeDevice
{
  public:
    RedEyeDevice(ColumnArrayConfig config,
                 analog::ProcessParams process, Rng rng);

    /**
     * Execute the analog prefix @p analog_layers of @p net on the
     * single-frame tensor @p input (1, C, H, W), returning the
     * quantized features crossing the A/D boundary, or an
     * InvalidArgument status when the partition is malformed (empty,
     * unknown layers, out-of-partition consumers, unsupported layer
     * kinds, batched input).
     */
    StatusOr<DeviceRun> tryRun(nn::Network &net,
                               const std::vector<std::string>
                                   &analog_layers,
                               const Tensor &input);

    /** Like tryRun(), but a malformed partition is fatal. */
    DeviceRun run(nn::Network &net,
                  const std::vector<std::string> &analog_layers,
                  const Tensor &input);

    /**
     * Arm a fault campaign for subsequent runs (nullptr disarms);
     * @p frame selects which faults have onset. See
     * ColumnArray::armFaults.
     */
    void
    armFaults(const fault::FaultModel *faults, std::uint64_t frame = 0)
    {
        array_.armFaults(faults, frame);
    }

    ColumnArray &array() { return array_; }

  private:
    ColumnArray array_;
    Rng rng_;
};

} // namespace arch
} // namespace redeye

#endif // REDEYE_REDEYE_DEVICE_HH
