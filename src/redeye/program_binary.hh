/**
 * @file
 * Program SRAM image format.
 *
 * "A developer utilizes RedEye by writing a ConvNet program to the
 * RedEye program SRAM of the control plane ... The ConvNet program
 * includes the layer ordering, layer dimensions, and convolutional
 * kernel weights", plus the noise parameters (Section III-C). This
 * module defines that artifact concretely: a tagged little-endian
 * byte image that round-trips a compiled Program, so toolchains can
 * ship programs to (simulated) devices and size them against the
 * SRAM budget.
 *
 * Layout: header (magic, version, instruction count) followed by
 * one record per instruction — kind, layer-name string, shapes,
 * geometry, noise parameter, and the 8-bit kernel image.
 */

#ifndef REDEYE_REDEYE_PROGRAM_BINARY_HH
#define REDEYE_REDEYE_PROGRAM_BINARY_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "redeye/program.hh"

namespace redeye {
namespace arch {

/** Serialize @p program into an SRAM byte image. */
std::vector<std::uint8_t> encodeProgram(const Program &program);

/**
 * Decode a byte image back into a Program (fatal on a malformed
 * image). encode(decode(x)) == x.
 */
Program decodeProgram(const std::vector<std::uint8_t> &image);

/** Write the image to a file (fatal on I/O error). */
void writeProgram(const Program &program, const std::string &path);

/** Read an image from a file (fatal on I/O error). */
Program readProgram(const std::string &path);

/**
 * Size of the control-plane portion of the image (everything except
 * kernel bytes): what the instruction sequencer stores.
 */
std::size_t controlPlaneBytes(const Program &program);

} // namespace arch
} // namespace redeye

#endif // REDEYE_REDEYE_PROGRAM_BINARY_HH
