#include "redeye/calibration.hh"

namespace redeye {
namespace arch {

Calibration
Calibration::paper()
{
    // Constants fit (tools/fit_calibration) so that, with the
    // GoogLeNet partitions of Figure 6 on 227x227 frames:
    //  - Depth5 at 40 dB / 4-bit consumes 1.4 mJ analog (Table I),
    //  - one 10-bit readout sample costs 7.116 nJ, reproducing the
    //    1.1 mJ conventional-sensor baseline (Section V-B),
    //  - Depth5 processes a frame in 32 ms (Figure 7b).
    Calibration c;
    c.analogScale = 5.2051;
    c.readoutScale = 837.697;
    c.timingScale = 2.1058;
    return c;
}

} // namespace arch
} // namespace redeye
