#include "redeye/device.hh"

#include <cmath>
#include <mutex>
#include <set>
#include <sstream>

#include "core/logging.hh"
#include "core/structural_hash.hh"
#include "nn/concat.hh"
#include "nn/lrn.hh"
#include "nn/network.hh"
#include "noise/snr.hh"

namespace redeye {
namespace arch {

namespace {

/** Layer kinds the analog array can realize. */
bool
analogExecutable(nn::LayerKind kind)
{
    switch (kind) {
      case nn::LayerKind::Convolution:
      case nn::LayerKind::ReLU:
      case nn::LayerKind::MaxPool:
      case nn::LayerKind::AvgPool:
      case nn::LayerKind::LRN:
      case nn::LayerKind::Concat:
        return true;
      default:
        return false;
    }
}

/**
 * Structural validation of the requested partition against @p net:
 * every named layer exists and is analog-executable, every consumed
 * activation is produced inside the partition (or is the sensor
 * input), and at least one layer executes.
 */
Status
validatePartition(nn::Network &net,
                  const std::vector<std::string> &analog_layers)
{
    std::set<std::string> wanted(analog_layers.begin(),
                                 analog_layers.end());
    for (const auto &name : analog_layers) {
        if (!net.hasLayer(name)) {
            return Status::invalidArgument("network has no layer '" +
                                           name + "'");
        }
    }

    std::set<std::string> produced{std::string(nn::kInputName)};
    std::size_t executed = 0;
    for (std::size_t i = 0; i < net.size(); ++i) {
        nn::Layer &layer = net.layerAt(i);
        if (!wanted.count(layer.name()))
            continue;
        if (!analogExecutable(layer.kind())) {
            return Status::invalidArgument(
                "RedEye device cannot execute layer '" +
                layer.name() + "' of kind " +
                nn::layerKindName(layer.kind()));
        }
        for (const auto &name : net.inputsOf(i)) {
            if (!produced.count(name)) {
                return Status::invalidArgument(
                    "analog layer consumes '" + name +
                    "', which is not in the partition");
            }
        }
        produced.insert(layer.name());
        ++executed;
    }
    if (executed == 0) {
        return Status::invalidArgument(
            "partition executed no layers");
    }
    return Status();
}

/**
 * Process-wide memo of structurally valid (topology, partition)
 * pairs, keyed by content address. Devices are constructed per frame
 * on the serving path, so an instance-local memo would never hit;
 * validity is a pure function of structure, so the memo is safe to
 * share. Only successes are recorded — failures stay on the slow
 * path and re-derive their diagnostic.
 */
std::mutex g_validatedMutex;
std::set<std::uint64_t> g_validated;

std::uint64_t
partitionKey(const nn::Network &net,
             const std::vector<std::string> &analog_layers)
{
    StructuralHasher h(/*salt=*/0x50617274u); // 'Part'
    h.mix(net.structuralHash());
    h.mix(analog_layers.size());
    for (const auto &name : analog_layers)
        h.mixString(name);
    return h.digest();
}

} // namespace

RedEyeDevice::RedEyeDevice(ColumnArrayConfig config,
                           analog::ProcessParams process, Rng rng)
    : array_(config, process, rng.fork()), rng_(rng)
{
}

StatusOr<DeviceRun>
RedEyeDevice::tryRun(nn::Network &net,
                     const std::vector<std::string> &analog_layers,
                     const Tensor &input)
{
    if (input.shape().n != 1) {
        return Status::invalidArgument(
            "device executes one frame at a time, got batch of " +
            std::to_string(input.shape().n));
    }
    const std::uint64_t vkey = partitionKey(net, analog_layers);
    bool known_valid;
    {
        std::lock_guard<std::mutex> lock(g_validatedMutex);
        known_valid = g_validated.count(vkey) > 0;
    }
    if (!known_valid) {
        RETURN_IF_ERROR(validatePartition(net, analog_layers));
        std::lock_guard<std::mutex> lock(g_validatedMutex);
        g_validated.insert(vkey);
    }

    std::set<std::string> wanted(analog_layers.begin(),
                                 analog_layers.end());

    array_.resetEnergy();
    DeviceRun result;
    std::map<std::string, Tensor> acts;
    Tensor last = input;
    std::string last_name = nn::kInputName;

    // Validation guarantees every fetched activation exists.
    auto fetch = [&](const std::string &name) -> const Tensor & {
        if (name == nn::kInputName)
            return input;
        auto it = acts.find(name);
        panic_if(it == acts.end(), "validated partition missing '",
                 name, "'");
        return it->second;
    };

    for (std::size_t i = 0; i < net.size(); ++i) {
        nn::Layer &layer = net.layerAt(i);
        if (!wanted.count(layer.name()))
            continue;
        const auto inputs = net.inputsOf(i);
        Tensor out;

        switch (layer.kind()) {
          case nn::LayerKind::Convolution: {
            auto &conv = static_cast<nn::ConvolutionLayer &>(layer);
            // Fold an immediately following in-partition ReLU.
            bool rectify = false;
            if (i + 1 < net.size()) {
                nn::Layer &next = net.layerAt(i + 1);
                if (next.kind() == nn::LayerKind::ReLU &&
                    wanted.count(next.name())) {
                    rectify = true;
                }
            }
            out = array_.runConvolution(fetch(inputs[0]), conv,
                                        rectify);
            break;
          }
          case nn::LayerKind::ReLU: {
            // Either folded into the preceding conv (then this is a
            // copy) or applied as clipping on a buffered tensor.
            const Tensor &x = fetch(inputs[0]);
            out = x;
            for (std::size_t k = 0; k < out.size(); ++k)
                out[k] = std::max(0.0f, out[k]);
            break;
          }
          case nn::LayerKind::MaxPool: {
            auto &pool = static_cast<nn::MaxPoolLayer &>(layer);
            out = array_.runMaxPool(fetch(inputs[0]), pool);
            break;
          }
          case nn::LayerKind::AvgPool: {
            // Lowered to a uniform-weight convolution on hardware;
            // functionally: exact mean + conv-module noise.
            std::vector<const Tensor *> ins{&fetch(inputs[0])};
            layer.forward(ins, out);
            const double rms = std::sqrt(
                out.vec().empty()
                    ? 0.0
                    : [&] {
                          double s = 0.0;
                          for (float v : out.vec())
                              s += static_cast<double>(v) * v;
                          return s / static_cast<double>(out.size());
                      }());
            const double sigma = noise::noiseSigmaForSnr(
                rms, array_.config().convSnrDb);
            for (std::size_t k = 0; k < out.size(); ++k) {
                out[k] += static_cast<float>(
                    rng_.gaussian(0.0, sigma));
            }
            break;
          }
          case nn::LayerKind::LRN: {
            // Realized as conv-module weight renormalization: exact
            // math plus module noise at the programmed SNR.
            std::vector<const Tensor *> ins{&fetch(inputs[0])};
            layer.forward(ins, out);
            double s = 0.0;
            for (float v : out.vec())
                s += static_cast<double>(v) * v;
            const double rms = out.size()
                                   ? std::sqrt(s /
                                               static_cast<double>(
                                                   out.size()))
                                   : 0.0;
            const double sigma = noise::noiseSigmaForSnr(
                rms, array_.config().convSnrDb);
            for (std::size_t k = 0; k < out.size(); ++k) {
                out[k] += static_cast<float>(
                    rng_.gaussian(0.0, sigma));
            }
            break;
          }
          case nn::LayerKind::Concat: {
            auto &concat = static_cast<nn::ConcatLayer &>(layer);
            std::vector<const Tensor *> ins;
            for (const auto &name : inputs)
                ins.push_back(&fetch(name));
            concat.forward(ins, out);
            break;
          }
          default:
            panic("validated partition reached unsupported layer '",
                  layer.name(), "'");
        }

        result.executedLayers.push_back(layer.name());
        acts[layer.name()] = out;
        last = std::move(out);
        last_name = layer.name();
    }

    result.features = array_.runQuantization(last);
    result.energy = array_.energy();
    result.forcedDecisions = array_.forcedDecisions();
    return result;
}

DeviceRun
RedEyeDevice::run(nn::Network &net,
                  const std::vector<std::string> &analog_layers,
                  const Tensor &input)
{
    StatusOr<DeviceRun> result = tryRun(net, analog_layers, input);
    fatal_if(!result.ok(), result.status().message());
    return std::move(result.value());
}

} // namespace arch
} // namespace redeye
