/**
 * @file
 * Silicon area model (Section V-D).
 *
 * "We estimate the silicon area using the sizes of unit circuit
 * components, multiplied by the number of components on chip. Each
 * column slice is estimated to occupy 0.225 mm^2, with a low
 * interconnect complexity of 23 per column. ... In total, RedEye
 * components amount to a die size of 10.2 x 5.0 mm^2, including the
 * 0.5 x 7 mm^2 customized on-chip microcontroller and the
 * 4.5 x 4.5 mm^2 pixel array."
 *
 * One column slice serves a stride-2 column pair (the first
 * convolution halves the horizontal rate), so a 227-column pixel
 * array needs 114 slices: 114 x 0.225 = 25.7 mm^2 of processing
 * fabric.
 */

#ifndef REDEYE_REDEYE_AREA_MODEL_HH
#define REDEYE_REDEYE_AREA_MODEL_HH

#include <cstddef>

#include "redeye/program.hh"

namespace redeye {
namespace arch {

/** Unit-component areas in 0.18 um [mm^2]. */
struct AreaParams {
    double columnSliceMm2 = 0.225;
    double mcuWidthMm = 0.5;
    double mcuHeightMm = 7.0;
    double pixelArrayMm = 4.5;  ///< square pixel array edge
    double sramMm2PerKb = 0.012; ///< on-chip SRAM density
    std::size_t pixelColumnsPerSlice = 2; ///< stride-2 pairing
};

/** Interconnect tally of one column slice. */
struct InterconnectBreakdown {
    std::size_t dataBridges = 0;  ///< horizontal neighbor taps
    std::size_t moduleLinks = 0;  ///< buffer/conv/pool/ADC chain
    std::size_t flowControl = 0;  ///< cyclic + per-module bypass
    std::size_t weightBus = 0;    ///< kernel distribution
    std::size_t clockAndSync = 0; ///< clock, reset, row strobe

    std::size_t
    total() const
    {
        return dataBridges + moduleLinks + flowControl + weightBus +
               clockAndSync;
    }
};

/** Whole-chip area estimate. */
struct AreaEstimate {
    std::size_t columnSlices = 0;
    double sliceAreaMm2 = 0.0;
    double mcuAreaMm2 = 0.0;
    double pixelArrayMm2 = 0.0;
    double sramAreaMm2 = 0.0;
    double totalMm2 = 0.0;
    InterconnectBreakdown interconnect;
};

/**
 * Estimate chip area for a device with @p pixel_columns running
 * @p program (whose maximum kernel width sets the bridge reach).
 */
AreaEstimate estimateArea(const Program &program,
                          std::size_t pixel_columns,
                          std::size_t sram_kb = 128,
                          const AreaParams &params = AreaParams{});

} // namespace arch
} // namespace redeye

#endif // REDEYE_REDEYE_AREA_MODEL_HH
