#include "system/pipeline.hh"

#include <algorithm>

#include "core/logging.hh"

namespace redeye {
namespace sys {

CloudletPipeline::CloudletPipeline(BleLink link) : link_(link)
{
}

SystemCost
CloudletPipeline::estimate(double sensor_energy_j, double sensor_time_s,
                           double payload_bytes) const
{
    fatal_if(sensor_energy_j < 0.0 || sensor_time_s < 0.0,
             "negative sensor cost");
    SystemCost cost;
    cost.sensorJ = sensor_energy_j;
    cost.transferJ = link_.transferEnergyJ(payload_bytes);
    const double link_time = link_.transferTimeS(payload_bytes);
    // Pipelined bottleneck sets throughput; latency is the stage sum
    // (see the SystemCost convention in the header).
    cost.frameTimeS = std::max(sensor_time_s, link_time);
    cost.latencyS = sensor_time_s + link_time;
    cost.fps = cost.frameTimeS > 0.0 ? 1.0 / cost.frameTimeS : 0.0;
    return cost;
}

HostPipeline::HostPipeline(JetsonTk1 host) : host_(host)
{
}

SystemCost
HostPipeline::estimate(double sensor_energy_j, double sensor_time_s,
                       double tail_macs) const
{
    fatal_if(sensor_energy_j < 0.0 || sensor_time_s < 0.0,
             "negative sensor cost");
    SystemCost cost;
    cost.sensorJ = sensor_energy_j;
    cost.computeJ = host_.executionEnergyJ(tail_macs);
    const double host_time = host_.executionTimeS(tail_macs);
    // Same convention as CloudletPipeline: bottleneck stage time for
    // throughput, stage sum for latency.
    cost.frameTimeS = std::max(sensor_time_s, host_time);
    cost.latencyS = sensor_time_s + host_time;
    cost.fps = cost.frameTimeS > 0.0 ? 1.0 / cost.frameTimeS : 0.0;
    return cost;
}

} // namespace sys
} // namespace redeye
