/**
 * @file
 * ShiDianNao accelerator comparison model.
 *
 * The paper compares against cited ShiDianNao statistics: "144
 * instances of the authors' 64x30 patch, with a stride of 16 pixels
 * in the 227x227 region, for 2.18 mJ of energy consumption per
 * frame", plus the 1.1 mJ image sensor, totaling over 3.2 mJ per
 * frame for a 7-layer ConvNet.
 */

#ifndef REDEYE_SYSTEM_SHIDIANNAO_HH
#define REDEYE_SYSTEM_SHIDIANNAO_HH

#include <cstddef>

namespace redeye {
namespace sys {

/** Patch-tiled accelerator model. */
struct ShiDianNaoParams {
    std::size_t patchW = 64;
    std::size_t patchH = 30;
    std::size_t stride = 16;
    double frameEnergyJ = 2.18e-3; ///< 144 patches on 227x227
    std::size_t anchorPatches = 144;
};

/** Number of patch instances tiling a WxH frame. */
std::size_t shiDianNaoPatchCount(std::size_t frame_w,
                                 std::size_t frame_h,
                                 const ShiDianNaoParams &params =
                                     ShiDianNaoParams{});

/** Accelerator energy for a WxH frame [J]. */
double shiDianNaoEnergyJ(std::size_t frame_w, std::size_t frame_h,
                         const ShiDianNaoParams &params =
                             ShiDianNaoParams{});

} // namespace sys
} // namespace redeye

#endif // REDEYE_SYSTEM_SHIDIANNAO_HH
