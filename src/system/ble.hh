/**
 * @file
 * Bluetooth Low Energy link model for cloudlet offload.
 *
 * Anchored to the characterization the paper cites (Siekkinen et
 * al.): "conventionally exporting a 227x227 frame will consume
 * 129.42 mJ over 1.54 seconds", while "RedEye Depth4 output only
 * consumes 33.7 mJ per frame, over 0.40 seconds". A fixed
 * per-transfer cost (connection maintenance) plus a per-byte rate
 * fits both anchor points.
 */

#ifndef REDEYE_SYSTEM_BLE_HH
#define REDEYE_SYSTEM_BLE_HH

#include <cstddef>

namespace redeye {
namespace sys {

/** BLE link characterization. */
struct BleParams {
    double fixedEnergyJ;   ///< per-transfer connection overhead [J]
    double energyPerByteJ; ///< marginal energy per payload byte [J]
    double fixedTimeS;     ///< per-transfer latency overhead [s]
    double timePerByteS;   ///< marginal time per payload byte [s]

    /** Parameters fit to the paper's two anchor transfers. */
    static BleParams paper();
};

/** BLE transfer estimator. */
class BleLink
{
  public:
    explicit BleLink(BleParams params = BleParams::paper());

    /** Energy to ship @p payload_bytes [J]. */
    double transferEnergyJ(double payload_bytes) const;

    /** Time to ship @p payload_bytes [s]. */
    double transferTimeS(double payload_bytes) const;

    const BleParams &params() const { return params_; }

  private:
    BleParams params_;
};

} // namespace sys
} // namespace redeye

#endif // REDEYE_SYSTEM_BLE_HH
