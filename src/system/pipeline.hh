/**
 * @file
 * End-to-end system pipelines: how RedEye composes with a cloudlet
 * link or an on-device host into the per-frame system energy/timing
 * the paper's Figure 8 charts.
 */

#ifndef REDEYE_SYSTEM_PIPELINE_HH
#define REDEYE_SYSTEM_PIPELINE_HH

#include "system/ble.hh"
#include "system/jetson.hh"

namespace redeye {
namespace sys {

/**
 * Per-frame cost of one system configuration.
 *
 * Timing convention (both pipelines): the stages are overlapped, so
 * `frameTimeS` is the *pipelined bottleneck* — the service time of
 * the slowest stage, which sets the sustained throughput
 * `fps = 1 / frameTimeS`. It is NOT the end-to-end latency of one
 * frame; that is `latencyS`, the sum of every stage's service time,
 * and always satisfies `latencyS >= frameTimeS`. Energy fields are
 * per frame and `totalJ()` is exactly their sum.
 */
struct SystemCost {
    double sensorJ = 0.0;   ///< image sensor or RedEye
    double transferJ = 0.0; ///< BLE payload (cloudlet only)
    double computeJ = 0.0;  ///< host ConvNet execution
    double frameTimeS = 0.0; ///< bottleneck stage time (pipeline period)
    double latencyS = 0.0;   ///< end-to-end per-frame latency (stage sum)
    double fps = 0.0;        ///< sustained pipelined frame rate

    double
    totalJ() const
    {
        return sensorJ + transferJ + computeJ;
    }
};

/** Cloudlet offload: sensor -> BLE -> remote compute (free). */
class CloudletPipeline
{
  public:
    explicit CloudletPipeline(BleLink link = BleLink());

    /**
     * @param sensor_energy_j Energy of the capture device per frame.
     * @param sensor_time_s Capture/processing latency per frame.
     * @param payload_bytes Data shipped per frame.
     */
    SystemCost estimate(double sensor_energy_j, double sensor_time_s,
                        double payload_bytes) const;

  private:
    BleLink link_;
};

/** On-device host: sensor -> Jetson CPU/GPU. */
class HostPipeline
{
  public:
    explicit HostPipeline(JetsonTk1 host);

    /**
     * @param sensor_energy_j Capture-device energy per frame.
     * @param sensor_time_s Capture-device latency per frame.
     * @param tail_macs Digital ConvNet workload left to the host.
     *
     * Sensor and host stages are pipelined: sustained rate is set by
     * the slower stage.
     */
    SystemCost estimate(double sensor_energy_j, double sensor_time_s,
                        double tail_macs) const;

  private:
    JetsonTk1 host_;
};

} // namespace sys
} // namespace redeye

#endif // REDEYE_SYSTEM_PIPELINE_HH
