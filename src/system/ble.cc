#include "system/ble.hh"

#include "core/logging.hh"

namespace redeye {
namespace sys {

BleParams
BleParams::paper()
{
    // Two anchors: a 227x227x3 10-bit raw frame (193,233 bytes ->
    // 129.42 mJ, 1.54 s) and the Depth4 4-bit feature tensor
    // (14x14x480 -> 47,040 bytes -> 33.7 mJ, 0.40 s). Solving the
    // affine model through both:
    constexpr double raw_bytes = 227.0 * 227.0 * 3.0 * 10.0 / 8.0;
    constexpr double feat_bytes = 14.0 * 14.0 * 480.0 * 4.0 / 8.0;
    constexpr double de = (129.42e-3 - 33.7e-3) /
                          (raw_bytes - feat_bytes);
    constexpr double dt = (1.54 - 0.40) / (raw_bytes - feat_bytes);

    BleParams p;
    p.energyPerByteJ = de;
    p.fixedEnergyJ = 129.42e-3 - de * raw_bytes;
    p.timePerByteS = dt;
    p.fixedTimeS = 1.54 - dt * raw_bytes;
    return p;
}

BleLink::BleLink(BleParams params) : params_(params)
{
    fatal_if(params_.energyPerByteJ <= 0.0 ||
                 params_.timePerByteS <= 0.0,
             "BLE marginal costs must be positive");
}

double
BleLink::transferEnergyJ(double payload_bytes) const
{
    fatal_if(payload_bytes < 0.0, "negative payload");
    return params_.fixedEnergyJ +
           params_.energyPerByteJ * payload_bytes;
}

double
BleLink::transferTimeS(double payload_bytes) const
{
    fatal_if(payload_bytes < 0.0, "negative payload");
    return params_.fixedTimeS + params_.timePerByteS * payload_bytes;
}

} // namespace sys
} // namespace redeye
