#include "system/shidiannao.hh"

#include "core/logging.hh"

namespace redeye {
namespace sys {

std::size_t
shiDianNaoPatchCount(std::size_t frame_w, std::size_t frame_h,
                     const ShiDianNaoParams &params)
{
    fatal_if(params.stride == 0, "stride must be positive");
    fatal_if(frame_w < params.patchW || frame_h < params.patchH,
             "frame smaller than one patch");
    const std::size_t nx = (frame_w - params.patchW) / params.stride +
                           1;
    const std::size_t ny = (frame_h - params.patchH) / params.stride +
                           1;
    return nx * ny;
}

double
shiDianNaoEnergyJ(std::size_t frame_w, std::size_t frame_h,
                  const ShiDianNaoParams &params)
{
    const double per_patch = params.frameEnergyJ /
                             static_cast<double>(params.anchorPatches);
    return per_patch * static_cast<double>(
                           shiDianNaoPatchCount(frame_w, frame_h,
                                                params));
}

} // namespace sys
} // namespace redeye
