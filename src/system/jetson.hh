/**
 * @file
 * NVIDIA Jetson TK1 host model.
 *
 * Anchored to the paper's oscilloscope measurements of GoogLeNet
 * under Caffe: GPU 12.2 W over 33.3 ms (406 mJ/frame), CPU 3.1 W over
 * 545 ms (1.7 J/frame); with Depth5 RedEye features the GPU tail
 * takes 18.6 ms and the CPU tail 297 ms. Execution time is modeled
 * affinely in the MAC workload (fixed framework overhead + marginal
 * cost per MAC), fit through each processor's two anchors, so other
 * partition depths interpolate.
 */

#ifndef REDEYE_SYSTEM_JETSON_HH
#define REDEYE_SYSTEM_JETSON_HH

#include <cstddef>

namespace redeye {
namespace sys {

/** Which Jetson processor executes the digital tail. */
enum class JetsonProcessor { CPU, GPU };

/** Name of the processor. */
const char *jetsonProcessorName(JetsonProcessor proc);

/** One processor's measured characterization. */
struct JetsonParams {
    double powerW;        ///< draw while executing ConvNet layers
    double fullTimeS;     ///< full GoogLeNet per frame
    double depth5TimeS;   ///< Depth5 tail per frame
    double fullMacs;      ///< MACs of full GoogLeNet
    double depth5Macs;    ///< MACs of the Depth5 tail

    /** Paper characterization for @p proc; workload counts must be
     * supplied by the caller (from models::analyzePartition). */
    static JetsonParams paper(JetsonProcessor proc, double full_macs,
                              double depth5_tail_macs);
};

/** Affine-in-MACs Jetson execution model. */
class JetsonTk1
{
  public:
    explicit JetsonTk1(JetsonParams params);

    /** Time to execute a tail of @p macs MACs [s]. */
    double executionTimeS(double macs) const;

    /** Energy to execute a tail of @p macs MACs [J]. */
    double executionEnergyJ(double macs) const;

    double powerW() const { return params_.powerW; }

    const JetsonParams &params() const { return params_; }

  private:
    double fixedTimeS_;
    double timePerMacS_;
    JetsonParams params_;
};

} // namespace sys
} // namespace redeye

#endif // REDEYE_SYSTEM_JETSON_HH
