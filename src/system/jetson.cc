#include "system/jetson.hh"

#include "core/logging.hh"

namespace redeye {
namespace sys {

const char *
jetsonProcessorName(JetsonProcessor proc)
{
    return proc == JetsonProcessor::CPU ? "CPU" : "GPU";
}

JetsonParams
JetsonParams::paper(JetsonProcessor proc, double full_macs,
                    double depth5_tail_macs)
{
    JetsonParams p;
    if (proc == JetsonProcessor::GPU) {
        p.powerW = 12.2;
        p.fullTimeS = 33.3e-3;
        p.depth5TimeS = 18.6e-3;
    } else {
        p.powerW = 3.1;
        p.fullTimeS = 545e-3;
        p.depth5TimeS = 297e-3;
    }
    p.fullMacs = full_macs;
    p.depth5Macs = depth5_tail_macs;
    return p;
}

JetsonTk1::JetsonTk1(JetsonParams params) : params_(params)
{
    fatal_if(params_.powerW <= 0.0, "power must be positive");
    fatal_if(params_.fullMacs <= params_.depth5Macs,
             "full workload must exceed the Depth5 tail");
    fatal_if(params_.fullTimeS <= params_.depth5TimeS,
             "full execution must take longer than the tail");
    timePerMacS_ = (params_.fullTimeS - params_.depth5TimeS) /
                   (params_.fullMacs - params_.depth5Macs);
    fixedTimeS_ = params_.fullTimeS - timePerMacS_ * params_.fullMacs;
}

double
JetsonTk1::executionTimeS(double macs) const
{
    fatal_if(macs < 0.0, "negative workload");
    // The affine fit is an interpolation between the two measured
    // anchors; extrapolating below the Depth5 tail is pinned at the
    // Depth5 measurement per MAC.
    if (macs < params_.depth5Macs) {
        return params_.depth5TimeS * macs / params_.depth5Macs;
    }
    return fixedTimeS_ + timePerMacS_ * macs;
}

double
JetsonTk1::executionEnergyJ(double macs) const
{
    return params_.powerW * executionTimeS(macs);
}

} // namespace sys
} // namespace redeye
