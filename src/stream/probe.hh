/**
 * @file
 * Calibration probe: detect degraded columns at runtime.
 *
 * The serving runtime cannot see the fault model — real silicon does
 * not announce which capacitor died. What it can do is periodically
 * push a *known* test vector through the array and compare each
 * column's answer against the pristine expectation. The probe runs a
 * full-swing ramp through a unit-weight convolution (exercising the
 * buffered-sample path, the MAC weight bank and the output stage), a
 * small max-pool window (exercising the comparators) and the SAR
 * readout, and flags every column whose error exceeds a threshold.
 *
 * The comparison trick: the reference array and the probed array are
 * seeded identically, and the fault hooks never consume extra noise
 * draws (dead columns still run their MACs), so both arrays realize
 * the *same* noise. The per-column difference is therefore exactly
 * the fault contribution — the probe needs no averaging and detects
 * faults well below the noise floor.
 */

#ifndef REDEYE_STREAM_PROBE_HH
#define REDEYE_STREAM_PROBE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_model.hh"
#include "redeye/column.hh"

namespace redeye {
namespace stream {

/** Probe knobs. */
struct ProbeConfig {
    /**
     * Relative per-column error above which a column is a suspect.
     * Errors are normalized by the probe signal's full scale.
     */
    double threshold = 0.02;

    std::uint64_t seed = 0x9a0be; ///< probe arrays' noise seed
};

/** What the probe measured. */
struct ProbeReport {
    /** Per-physical-column relative error vs the pristine reference. */
    std::vector<double> columnError;

    /** Columns whose error exceeded the threshold, ascending. */
    std::vector<std::size_t> suspectColumns;

    bool anySuspect() const { return !suspectColumns.empty(); }

    /** One-line summary. */
    std::string str() const;
};

/**
 * Probe an array built from @p array_config with @p faults armed at
 * frame @p frame (nullptr probes pristine silicon and reports no
 * suspects). Pure function of its arguments — every caller computes
 * the identical report, which is what lets independent pipeline
 * workers agree on a degradation plan without shared state.
 */
ProbeReport runCalibrationProbe(const arch::ColumnArrayConfig
                                    &array_config,
                                const fault::FaultModel *faults,
                                std::uint64_t frame,
                                const ProbeConfig &config = {});

} // namespace stream
} // namespace redeye

#endif // REDEYE_STREAM_PROBE_HH
