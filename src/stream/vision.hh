/**
 * @file
 * The continuous-vision serving pipeline: concrete StageSpecs wiring
 * the paper's always-on frame path into the streaming runtime.
 *
 *   source -> sensor sampling -> RedEye device -> host tail
 *
 * The sensor stage applies the raw sampling model (inverse gamma,
 * shot noise, fixed-pattern noise); the device stage executes the
 * analog prefix of MiniGoogLeNet through the functional ColumnArray
 * and exports the quantized cut tensor plus the realized energy; the
 * host stage classifies the features with the digital tail network
 * and prices the digital side with the Jetson/BLE system models.
 *
 * Every stage worker owns private replicas (sensor layer, network,
 * per-frame device) built from the same seeds, and keys all noise by
 * the frame index, so frame content is bit-identical no matter how
 * many workers serve a stage.
 */

#ifndef REDEYE_STREAM_VISION_HH
#define REDEYE_STREAM_VISION_HH

#include <memory>

#include "data/shapes_dataset.hh"
#include "fault/fault_model.hh"
#include "nn/network.hh"
#include "noise/sensor_noise.hh"
#include "stream/degrade.hh"
#include "stream/runner.hh"

namespace redeye {
namespace stream {

/** Digital side of the system (pricing + tail execution host). */
enum class HostTail {
    JetsonGpu, ///< on-device Jetson TK1 GPU
    JetsonCpu, ///< on-device Jetson TK1 CPU
    Cloudlet,  ///< BLE offload (remote compute priced as free)
};

/** Name of a host tail. */
const char *hostTailName(HostTail host);

/** Configuration of the vision pipeline. */
struct VisionConfig {
    unsigned depth = 1;        ///< MiniGoogLeNet analog depth cut
    std::size_t classes = data::kShapeClasses;
    double convSnrDb = 40.0;   ///< RedEye fidelity mode
    unsigned adcBits = 4;      ///< readout resolution
    unsigned weightBits = 8;   ///< kernel DAC resolution
    HostTail host = HostTail::JetsonGpu;

    noise::SensorParams sensor; ///< raw sampling model

    std::uint64_t weightSeed = 0x3317a11;  ///< network replica seed

    /**
     * Optional trained weights: when set, every network replica
     * (device prefix, host tail, bypass network) copies matching
     * layers from this network after construction, so served
     * predictions reflect a trained classifier instead of the random
     * init. Shared read-only across workers; null = random init.
     */
    std::shared_ptr<nn::Network> weights;
    std::uint64_t sensorSeed = 0x5e9505;   ///< sampling noise base
    std::uint64_t deviceSeed = 0xde71ce;   ///< analog noise base

    std::size_t sensorWorkers = 1;
    std::size_t deviceWorkers = 1;
    std::size_t hostWorkers = 1;

    /**
     * Intra-frame parallelism of the host tail: GEMM threads per host
     * worker. Each worker > 1 owns a private ThreadPool and a
     * matching multi-lane Workspace, and the blocked GEMM backend
     * partitions each tail product's columns across it. 1 = serial
     * tail execution (the historical behaviour). Logits are
     * bit-identical at any setting (DESIGN.md §12).
     */
    std::size_t hostThreads = 1;

    /**
     * Dynamic batching of the host tail: the largest number of queued
     * frames one tail forward may coalesce into a single batched
     * im2col + GEMM pass. 1 = per-frame serving. Values > 1 switch
     * the host stage to a StageSpec batch worker.
     */
    std::size_t hostBatch = 1;

    /**
     * Latency budget of a partial host batch: how long a host worker
     * holding fewer than hostBatch frames waits for stragglers before
     * serving what it has (StageSpec::maxBatchWaitS).
     */
    double hostBatchWaitS = 0.0;

    /**
     * Fault campaign armed on every device replica (shared,
     * immutable; nullptr = pristine silicon). Faults with a later
     * onset frame stay dormant until the stream reaches them.
     */
    std::shared_ptr<const fault::FaultModel> faults;

    /**
     * Degradation policy. When enabled, device workers derive plans
     * once per epoch — remap, ADC boost or full analog bypass — as a
     * pure function of the (shared, static) fault model and epoch.
     */
    DegradationPolicyConfig degrade;

    /**
     * Shared content-addressed plan cache: the first worker to reach
     * an epoch probes and plans; the rest fetch the stored plan
     * instead of re-probing. makeVisionStages() creates one when the
     * policy is enabled and none is supplied; supply your own to
     * observe hit/miss statistics or share it across pipelines with
     * identical operating points.
     */
    std::shared_ptr<DegradePlanCache> planCache;
};

/**
 * Build the three vision stages for a StreamRunner. Worker state is
 * constructed lazily inside each worker (StageSpec::makeWorker), so
 * this call itself is cheap.
 */
std::vector<StageSpec> makeVisionStages(const VisionConfig &config);

/**
 * Generate the replay dataset the serving benches and tests use:
 * @p per_class examples per shape class, rendered from @p seed.
 */
data::Dataset makeReplayDataset(std::size_t per_class,
                                std::uint64_t seed);

} // namespace stream
} // namespace redeye

#endif // REDEYE_STREAM_VISION_HH
