/**
 * @file
 * The unit of work flowing through the streaming runtime.
 *
 * A StreamFrame is produced by a FrameSource, carried through the
 * pipeline stages by value (bounded queues own the frames they
 * buffer), and enriched in place: the sensor stage rewrites `image`
 * with sampled raw pixels, the device stage fills `features` and the
 * analog energy, the host stage fills the prediction and the system
 * energy. Content fields are pure functions of `index` — the
 * determinism contract of the runtime (see DESIGN.md §7).
 */

#ifndef REDEYE_STREAM_FRAME_HH
#define REDEYE_STREAM_FRAME_HH

#include <cstdint>

#include "core/status.hh"
#include "tensor/tensor.hh"

namespace redeye {
namespace stream {

/** One frame in flight through the pipeline. */
struct StreamFrame {
    std::uint64_t index = 0;   ///< monotone frame number
    Tensor image;              ///< (1, C, H, W) pixels in [0, 1]
    std::int32_t label = -1;   ///< ground-truth class (replay sources)

    double emitS = 0.0;        ///< emission time, seconds since start

    // Filled by downstream stages.
    Tensor features;           ///< quantized cut tensor from RedEye
    std::int32_t predicted = -1; ///< host-tail classification
    double analogEnergyJ = 0.0;  ///< realized RedEye energy
    double systemEnergyJ = 0.0;  ///< analog + host/link model energy

    /**
     * Degradation bookkeeping. A stage sets `failed` to surrender the
     * frame: the runner counts it and drops it instead of forwarding.
     * `analogBypassed` marks frames the degradation policy routed
     * around the analog stage (the host runs the full digital net).
     * `failCode` classifies the failure for retry/reporting purposes
     * (DeadlineExceeded = watchdog/timeout, anything else = error);
     * stages that surrender a frame should set it alongside `failed`.
     */
    bool failed = false;
    bool analogBypassed = false;
    StatusCode failCode = StatusCode::Ok;
};

} // namespace stream
} // namespace redeye

#endif // REDEYE_STREAM_FRAME_HH
