#include "stream/runner.hh"

#include <algorithm>
#include <thread>

#include "core/exec.hh"
#include "core/logging.hh"

namespace redeye {
namespace stream {

namespace {

/** Seconds between two steady-clock points. */
double
secondsBetween(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

const char *
admissionPolicyName(AdmissionPolicy policy)
{
    switch (policy) {
      case AdmissionPolicy::Block:
        return "block";
      case AdmissionPolicy::DropNewest:
        return "drop-newest";
      case AdmissionPolicy::DropOldest:
        return "drop-oldest";
    }
    return "?";
}

StreamRunner::StreamRunner(FrameSource &source,
                           std::vector<StageSpec> stages,
                           RunnerConfig config)
    : source_(source), stages_(std::move(stages)), config_(config)
{
    fatal_if(stages_.empty(), "pipeline needs at least one stage");
    fatal_if(config_.frames == 0, "run needs at least one frame");
    for (const StageSpec &s : stages_) {
        fatal_if(s.workers == 0, "stage '", s.name,
                 "' needs at least one worker");
        fatal_if(!s.makeWorker && !s.makeBatchWorker, "stage '",
                 s.name, "' has no worker factory");
        fatal_if(s.makeWorker && s.makeBatchWorker, "stage '", s.name,
                 "' has both a per-frame and a batch worker factory");
        fatal_if(s.maxBatch == 0, "stage '", s.name,
                 "': maxBatch must be positive");
        fatal_if(s.maxBatch > 1 && !s.makeBatchWorker, "stage '",
                 s.name, "': maxBatch > 1 needs a batch worker");
        fatal_if(s.maxBatchWaitS < 0.0, "stage '", s.name,
                 "': maxBatchWaitS must be non-negative");
    }
}

double
StreamRunner::secondsSinceStart() const
{
    return secondsBetween(start_, Clock::now());
}

void
StreamRunner::abortRun()
{
    stop_.store(true);
    for (auto &q : queues_)
        q->close();
}

void
StreamRunner::markWorkerReady()
{
    {
        std::lock_guard<std::mutex> lock(readyMutex_);
        ++readyCount_;
    }
    readyCv_.notify_all();
}

void
StreamRunner::waitWorkersReady(std::size_t count)
{
    std::unique_lock<std::mutex> lock(readyMutex_);
    readyCv_.wait(lock, [&] { return readyCount_ >= count; });
}

void
StreamRunner::recycleFrame(StreamFrame &&frame)
{
    // Never blocks: the pool is sized for every frame that can be in
    // flight, so Full only happens if a stage duplicated a frame.
    (void)pool_->tryPush(std::move(frame));
}

void
StreamRunner::sourceLoop(StreamMetrics &metrics)
{
    // Do not start the arrival clock until every stage worker has
    // built its state; otherwise warm-up (network construction)
    // would masquerade as queueing delay.
    std::size_t stage_workers = 0;
    for (const StageSpec &s : stages_)
        stage_workers += s.workers;
    waitWorkersReady(stage_workers);

    start_ = Clock::now();
    Queue &q0 = *queues_[0];
    double next_arrival = 0.0;

    // One frame object, refilled in place. A successful push moves
    // its buffers into the queue; the next iteration adopts a retired
    // frame's buffers from the recycling pool. A rejected push
    // (DropNewest at capacity) leaves the buffers right here for the
    // next fill. Either way, steady state allocates nothing.
    StreamFrame frame;

    for (std::uint64_t i = 0; i < config_.frames; ++i) {
        if (stop_.load())
            break;
        next_arrival += config_.arrivals.interarrivalS(i);
        if (next_arrival > 0.0) {
            std::this_thread::sleep_until(
                start_ + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 next_arrival)));
        }

        if (frame.image.empty())
            (void)pool_->tryPop(frame);
        source_.fill(i, frame);
        frame.emitS = secondsSinceStart();
        metrics.recordOffered();

        bool closed = false;
        switch (config_.policy) {
          case AdmissionPolicy::Block: {
            if (q0.push(std::move(frame)) == QueuePush::Ok)
                metrics.recordAdmitted();
            else
                closed = true;
            break;
          }
          case AdmissionPolicy::DropNewest: {
            const QueuePush r = q0.tryPush(std::move(frame));
            if (r == QueuePush::Ok)
                metrics.recordAdmitted();
            else if (r == QueuePush::Full)
                metrics.recordDropped(i); // frame left intact: reused
            else
                closed = true;
            break;
          }
          case AdmissionPolicy::DropOldest: {
            std::optional<StreamFrame> evicted;
            if (q0.pushEvictOldest(std::move(frame), evicted) ==
                QueuePush::Ok) {
                metrics.recordAdmitted();
                if (evicted) {
                    metrics.recordDropped(evicted->index);
                    recycleFrame(std::move(*evicted));
                }
            } else {
                closed = true;
            }
            break;
          }
        }
        if (closed)
            break; // the run was aborted under us
    }
    q0.close();
}

void
StreamRunner::watchdogLoop(StreamMetrics &metrics)
{
    const auto deadline =
        std::chrono::duration<double>(config_.stageTimeoutS);
    const auto deadline_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(deadline)
            .count();
    // Scan well inside the deadline so overruns are caught promptly,
    // but never spin faster than once a millisecond.
    const auto tick = std::chrono::duration<double>(
        std::max(config_.stageTimeoutS / 8.0, 1e-3));

    while (!watchdogStop_.load()) {
        std::this_thread::sleep_for(tick);
        const auto now = Clock::now().time_since_epoch().count();
        for (auto &slot : slots_) {
            if (!slot->active.load())
                continue;
            if (now - slot->startNs.load() < deadline_ns)
                continue;
            // Claim the frame; the worker drops it on return. If the
            // worker claimed first the frame just completed in time.
            if (!slot->claimed.exchange(true)) {
                metrics.recordFailed(slot->frame.load(), slot->stage,
                                     StatusCode::DeadlineExceeded);
            }
        }
    }
}

void
StreamRunner::stageLoop(std::size_t stage, std::size_t worker,
                        WorkerSlot *slot, StreamMetrics &metrics)
{
    if (stages_[stage].makeBatchWorker) {
        stageBatchLoop(stage, worker, slot, metrics);
        return;
    }

    std::function<void(StreamFrame &)> fn;
    try {
        fn = stages_[stage].makeWorker(worker);
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(errorMutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        abortRun();
    }
    markWorkerReady();

    Queue &in = *queues_[stage];
    Queue *out =
        stage + 1 < stages_.size() ? queues_[stage + 1].get() : nullptr;

    if (fn) {
        StreamFrame frame;
        try {
            while (in.pop(frame)) {
                metrics.recordQueueDepth(stage, in.size());
                const auto t0 = Clock::now();
                if (slot) {
                    slot->frame.store(frame.index);
                    slot->claimed.store(false);
                    slot->startNs.store(
                        t0.time_since_epoch().count());
                    slot->active.store(true);
                }
                fn(frame);
                bool watchdog_claimed = false;
                if (slot) {
                    slot->active.store(false);
                    // Claim the frame back; losing means the
                    // watchdog already counted it failed.
                    watchdog_claimed = slot->claimed.exchange(true);
                }
                metrics.recordService(
                    stage, secondsBetween(t0, Clock::now()));
                if (watchdog_claimed) {
                    // Deadline overrun: drop the frame.
                    recycleFrame(std::move(frame));
                    continue;
                }
                if (frame.failed) {
                    metrics.recordFailed(frame.index, stage,
                                         frame.failCode !=
                                                 StatusCode::Ok
                                             ? frame.failCode
                                             : StatusCode::Internal);
                    recycleFrame(std::move(frame));
                    continue; // the stage surrendered the frame
                }
                if (out) {
                    if (out->push(std::move(frame)) != QueuePush::Ok)
                        break; // aborted
                } else {
                    metrics.recordCompleted(frame,
                                            secondsSinceStart());
                    if (config_.feedbackTap)
                        config_.feedbackTap(frame);
                    recycleFrame(std::move(frame));
                }
            }
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(errorMutex_);
                if (!firstError_)
                    firstError_ = std::current_exception();
            }
            abortRun();
        }
    }

    // Last worker out closes the downstream queue so the next stage
    // drains and terminates.
    if (out && live_[stage]->fetch_sub(1) == 1)
        out->close();
}

void
StreamRunner::stageBatchLoop(std::size_t stage, std::size_t worker,
                             WorkerSlot *slot, StreamMetrics &metrics)
{
    std::function<void(std::vector<StreamFrame> &)> fn;
    try {
        fn = stages_[stage].makeBatchWorker(worker);
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(errorMutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        abortRun();
    }
    markWorkerReady();

    Queue &in = *queues_[stage];
    Queue *out =
        stage + 1 < stages_.size() ? queues_[stage + 1].get() : nullptr;
    const std::size_t max_batch = stages_[stage].maxBatch;
    const auto wait = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(stages_[stage].maxBatchWaitS));

    if (fn) {
        std::vector<StreamFrame> batch;
        batch.reserve(max_batch);
        StreamFrame frame;
        try {
            while (in.pop(frame)) {
                // clear() retires last batch's (moved-from) frames
                // but keeps the vector's capacity: the batch path
                // allocates nothing in steady state.
                batch.clear();
                batch.push_back(std::move(frame));
                // Coalesce: drain what is already queued for free,
                // then spend the latency budget on stragglers.
                const auto deadline = Clock::now() + wait;
                while (batch.size() < max_batch) {
                    if (in.tryPop(frame)) {
                        batch.push_back(std::move(frame));
                        continue;
                    }
                    const double left_s = secondsBetween(
                        Clock::now(), deadline);
                    if (left_s <= 0.0)
                        break;
                    if (in.tryPopFor(frame, left_s) != QueuePop::Ok)
                        break; // timed out or closed: serve partial
                    batch.push_back(std::move(frame));
                }
                metrics.recordQueueDepth(stage, in.size());
                metrics.recordBatch(stage, batch.size());

                const auto t0 = Clock::now();
                if (slot) {
                    // The watchdog sees the batch as one unit of
                    // service, published under its oldest frame.
                    slot->frame.store(batch.front().index);
                    slot->claimed.store(false);
                    slot->startNs.store(
                        t0.time_since_epoch().count());
                    slot->active.store(true);
                }
                fn(batch);
                bool watchdog_claimed = false;
                if (slot) {
                    slot->active.store(false);
                    watchdog_claimed = slot->claimed.exchange(true);
                }
                metrics.recordService(
                    stage, secondsBetween(t0, Clock::now()));

                // Frames leave the batch individually: the pool,
                // failure accounting and downstream hand-off see the
                // same per-frame semantics as an unbatched stage.
                bool aborted = false;
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    StreamFrame &f = batch[i];
                    if (watchdog_claimed) {
                        // The watchdog already counted the published
                        // (first) frame failed; its batchmates die
                        // with it and are accounted here.
                        if (i > 0) {
                            metrics.recordFailed(
                                f.index, stage,
                                StatusCode::DeadlineExceeded);
                        }
                        recycleFrame(std::move(f));
                        continue;
                    }
                    if (f.failed) {
                        metrics.recordFailed(
                            f.index, stage,
                            f.failCode != StatusCode::Ok
                                ? f.failCode
                                : StatusCode::Internal);
                        recycleFrame(std::move(f));
                        continue;
                    }
                    if (out) {
                        // push() only moves on success, so a frame
                        // rejected by an aborted run is recycled.
                        if (aborted ||
                            out->push(std::move(f)) != QueuePush::Ok) {
                            aborted = true;
                            recycleFrame(std::move(f));
                        }
                    } else {
                        metrics.recordCompleted(f,
                                                secondsSinceStart());
                        if (config_.feedbackTap)
                            config_.feedbackTap(f);
                        recycleFrame(std::move(f));
                    }
                }
                if (aborted)
                    break;
            }
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(errorMutex_);
                if (!firstError_)
                    firstError_ = std::current_exception();
            }
            abortRun();
        }
    }

    if (out && live_[stage]->fetch_sub(1) == 1)
        out->close();
}

StreamReport
StreamRunner::runImpl()
{
    started_ = true;

    queues_.clear();
    live_.clear();
    slots_.clear();
    std::vector<StageInfo> infos;
    std::size_t total_workers = 1; // the source
    for (const StageSpec &s : stages_) {
        queues_.push_back(
            std::make_unique<Queue>(config_.queueCapacity));
        live_.push_back(std::make_unique<std::atomic<std::size_t>>(
            s.workers));
        infos.push_back(StageInfo{s.name, s.workers});
        total_workers += s.workers;
    }
    // One slot per stage worker, in stage order (matching the chunk
    // assignment below); the stage index lets the watchdog attribute
    // a killed frame to the stage that wedged on it.
    for (std::size_t stage = 0; stage < stages_.size(); ++stage) {
        for (std::size_t w = 0; w < stages_[stage].workers; ++w) {
            auto slot = std::make_unique<WorkerSlot>();
            slot->stage = stage;
            slots_.push_back(std::move(slot));
        }
    }
    // The recycling pool must hold every frame that can be in flight
    // at once — one per queue slot plus every frame a worker can hold
    // (a whole batch for batching stages, one for the rest, one for
    // the source) — so recycleFrame() never finds it full.
    std::size_t held_frames = 1; // the source's in-hand frame
    for (const StageSpec &s : stages_)
        held_frames += s.workers * s.maxBatch;
    const std::size_t pool_frames = stages_.size() *
                                        config_.queueCapacity +
                                    held_frames + 1;
    pool_ = std::make_unique<Queue>(pool_frames);
    // Pre-warm the pool: materialize every buffer that can be in
    // flight at once, with `features` pre-sized to the image so the
    // first device-stage trip reuses the capacity. Lazy creation
    // would otherwise leak allocations into steady state whenever
    // retirements momentarily lag admissions and the source finds
    // the pool dry — a timing accident, not a workload property.
    for (std::size_t i = 0; i < pool_frames; ++i) {
        StreamFrame warm;
        source_.fill(0, warm);
        warm.features = warm.image;
        (void)pool_->tryPush(std::move(warm));
    }
    StreamMetrics metrics(infos, config_.frames);

    std::thread watchdog;
    watchdogStop_.store(false);
    if (config_.stageTimeoutS > 0.0)
        watchdog = std::thread([&] { watchdogLoop(metrics); });

    // Every worker is one long-lived chunk; the pool is sized so all
    // of them run concurrently (the caller serves as one worker).
    ThreadPool pool(total_workers);
    start_ = Clock::now(); // placeholder until the source re-stamps
    pool.run(total_workers, [&](std::size_t chunk) {
        if (chunk == 0) {
            sourceLoop(metrics);
            return;
        }
        std::size_t index = chunk - 1;
        WorkerSlot *slot = slots_[chunk - 1].get();
        for (std::size_t stage = 0; stage < stages_.size(); ++stage) {
            if (index < stages_[stage].workers) {
                stageLoop(stage, index, slot, metrics);
                return;
            }
            index -= stages_[stage].workers;
        }
        panic("worker chunk out of range");
    });

    if (watchdog.joinable()) {
        watchdogStop_.store(true);
        watchdog.join();
    }

    {
        std::lock_guard<std::mutex> lock(errorMutex_);
        if (firstError_)
            std::rethrow_exception(firstError_);
    }
    return metrics.report(secondsSinceStart());
}

StreamReport
StreamRunner::run()
{
    panic_if(started_, "StreamRunner::run() may be called once");
    return runImpl();
}

StatusOr<StreamReport>
StreamRunner::tryRun()
{
    if (started_) {
        return Status::failedPrecondition(
            "StreamRunner::run() may be called once");
    }
    try {
        return runImpl();
    } catch (const std::exception &e) {
        return Status::internal(std::string("stage failure: ") +
                                e.what());
    } catch (...) {
        return Status::internal("stage failure: unknown exception");
    }
}

} // namespace stream
} // namespace redeye
