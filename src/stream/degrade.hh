/**
 * @file
 * Graceful degradation policy for a faulty analog array.
 *
 * Turns a calibration-probe report into a concrete plan:
 *
 *  - no suspects        -> Normal: run the array untouched.
 *  - a few suspects     -> Remap: steer logical positions off the
 *                          suspect columns (ColumnArray::setColumnMap)
 *                          and raise the ADC resolution to claw back
 *                          the precision the remap's column sharing
 *                          costs.
 *  - too many suspects  -> Bypass: the array is past saving; route
 *                          frames around the analog stage and let the
 *                          host run the full digital network (the
 *                          partition machinery's depth-0 path).
 *
 * planDegradation() is a pure function of (probe, config): every
 * pipeline worker derives the identical plan independently, so the
 * policy needs no shared mutable state and cannot race.
 */

#ifndef REDEYE_STREAM_DEGRADE_HH
#define REDEYE_STREAM_DEGRADE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/function_ref.hh"
#include "redeye/column.hh"
#include "stream/probe.hh"

namespace redeye {
namespace stream {

/** How the pipeline treats the analog stage. */
enum class DegradeMode {
    Normal, ///< healthy array, no intervention
    Remap,  ///< steer work off suspect columns, boost the ADC
    Bypass, ///< skip the analog stage, host runs the full network
};

/** Name of a degradation mode. */
const char *degradeModeName(DegradeMode mode);

/** Policy knobs. */
struct DegradationPolicyConfig {
    bool enabled = false;        ///< run probes and apply plans

    /**
     * Frames per probe epoch: frame i uses the plan probed at frame
     * (i / probePeriod) * probePeriod, so wear-out faults (onset
     * mid-run) are caught within one period.
     */
    std::uint64_t probePeriod = 16;

    double probeThreshold = 0.02;  ///< ProbeConfig::threshold

    /**
     * Suspect fraction at or above which remapping is hopeless and
     * the plan switches to Bypass.
     */
    double bypassSuspectFraction = 0.5;

    unsigned adcBoostBits = 2;     ///< extra ADC bits when remapped
};

/** The per-epoch decision. */
struct DegradePlan {
    DegradeMode mode = DegradeMode::Normal;

    /** Logical->physical map for Remap (empty otherwise). */
    std::vector<std::size_t> columnMap;

    /** ADC resolution to program for Remap (0 = leave unchanged). */
    unsigned adcBits = 0;

    /** The suspects the plan routes around (diagnostic). */
    std::vector<std::size_t> suspectColumns;

    /** One-line summary. */
    std::string str() const;
};

/**
 * Decide how to serve the array described by @p probe. Pure function
 * of its arguments (see file header).
 */
DegradePlan planDegradation(const ProbeReport &probe,
                            const arch::ColumnArrayConfig
                                &array_config,
                            const DegradationPolicyConfig &config);

/**
 * Content address of the plan for @p epoch under the given array and
 * policy operating point (core/structural_hash.hh): the plan is a
 * pure function of these inputs plus the (shared, immutable) fault
 * model, so equal keys within one pipeline imply equal plans.
 */
std::uint64_t degradePlanKey(std::uint64_t epoch,
                             const arch::ColumnArrayConfig
                                 &array_config,
                             const DegradationPolicyConfig &config);

/**
 * Thread-safe, content-addressed cache of degradation plans, shared
 * by every device worker of a pipeline (VisionConfig::planCache):
 * the first worker to reach an epoch probes and plans once; the rest
 * fetch. Entries are never evicted (epochs are few and plans small),
 * so returned references stay valid for the cache's lifetime.
 */
class DegradePlanCache
{
  public:
    /**
     * Plan stored under @p key, invoking @p compute to build it on
     * the first request. @p compute may be expensive (it probes the
     * array); it runs outside the lock, so two workers racing on a
     * fresh key may both compute — purity makes the results
     * identical, and only one is kept.
     */
    const DegradePlan &fetch(std::uint64_t key,
                             FunctionRef<DegradePlan()> compute);

    /** Lookups served from the cache. */
    std::uint64_t hits() const;

    /** Lookups that had to compute. */
    std::uint64_t misses() const;

    /** Cached plans. */
    std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::uint64_t, DegradePlan> plans_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace stream
} // namespace redeye

#endif // REDEYE_STREAM_DEGRADE_HH
