/**
 * @file
 * Graceful degradation policy for a faulty analog array.
 *
 * Turns a calibration-probe report into a concrete plan:
 *
 *  - no suspects        -> Normal: run the array untouched.
 *  - a few suspects     -> Remap: steer logical positions off the
 *                          suspect columns (ColumnArray::setColumnMap)
 *                          and raise the ADC resolution to claw back
 *                          the precision the remap's column sharing
 *                          costs.
 *  - too many suspects  -> Bypass: the array is past saving; route
 *                          frames around the analog stage and let the
 *                          host run the full digital network (the
 *                          partition machinery's depth-0 path).
 *
 * planDegradation() is a pure function of (probe, config): every
 * pipeline worker derives the identical plan independently, so the
 * policy needs no shared mutable state and cannot race.
 */

#ifndef REDEYE_STREAM_DEGRADE_HH
#define REDEYE_STREAM_DEGRADE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "redeye/column.hh"
#include "stream/probe.hh"

namespace redeye {
namespace stream {

/** How the pipeline treats the analog stage. */
enum class DegradeMode {
    Normal, ///< healthy array, no intervention
    Remap,  ///< steer work off suspect columns, boost the ADC
    Bypass, ///< skip the analog stage, host runs the full network
};

/** Name of a degradation mode. */
const char *degradeModeName(DegradeMode mode);

/** Policy knobs. */
struct DegradationPolicyConfig {
    bool enabled = false;        ///< run probes and apply plans

    /**
     * Frames per probe epoch: frame i uses the plan probed at frame
     * (i / probePeriod) * probePeriod, so wear-out faults (onset
     * mid-run) are caught within one period.
     */
    std::uint64_t probePeriod = 16;

    double probeThreshold = 0.02;  ///< ProbeConfig::threshold

    /**
     * Suspect fraction at or above which remapping is hopeless and
     * the plan switches to Bypass.
     */
    double bypassSuspectFraction = 0.5;

    unsigned adcBoostBits = 2;     ///< extra ADC bits when remapped
};

/** The per-epoch decision. */
struct DegradePlan {
    DegradeMode mode = DegradeMode::Normal;

    /** Logical->physical map for Remap (empty otherwise). */
    std::vector<std::size_t> columnMap;

    /** ADC resolution to program for Remap (0 = leave unchanged). */
    unsigned adcBits = 0;

    /** The suspects the plan routes around (diagnostic). */
    std::vector<std::size_t> suspectColumns;

    /** One-line summary. */
    std::string str() const;
};

/**
 * Decide how to serve the array described by @p probe. Pure function
 * of its arguments (see file header).
 */
DegradePlan planDegradation(const ProbeReport &probe,
                            const arch::ColumnArrayConfig
                                &array_config,
                            const DegradationPolicyConfig &config);

} // namespace stream
} // namespace redeye

#endif // REDEYE_STREAM_DEGRADE_HH
