#include "stream/metrics.hh"

#include <algorithm>
#include <ostream>

#include "core/logging.hh"
#include "core/table.hh"
#include "core/units.hh"

namespace redeye {
namespace stream {

StreamMetrics::StreamMetrics(std::vector<StageInfo> stages,
                             std::uint64_t expected_frames)
    : stages_(std::move(stages)), accum_(stages_.size()),
      predictions_(expected_frames, -1)
{
    fatal_if(stages_.empty(), "metrics need at least one stage");
    // Every sample vector gets its full-run capacity up front so the
    // record* hot paths never reallocate (the streaming serving path
    // asserts zero steady-state heap allocation).
    latencyS_.reserve(expected_frames);
    for (StageAccum &a : accum_)
        a.serviceS.reserve(expected_frames);
}

void
StreamMetrics::recordOffered()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++offered_;
}

void
StreamMetrics::recordAdmitted()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++admitted_;
}

void
StreamMetrics::recordDropped(std::uint64_t index)
{
    (void)index;
    std::lock_guard<std::mutex> lock(mutex_);
    ++dropped_;
}

void
StreamMetrics::recordFailed(std::uint64_t index, std::size_t stage,
                            StatusCode code)
{
    (void)index;
    std::lock_guard<std::mutex> lock(mutex_);
    panic_if(stage >= accum_.size(), "stage index out of range");
    ++failed_;
    ++accum_[stage].failed;
    if (code == StatusCode::DeadlineExceeded)
        ++accum_[stage].failedByTimeout;
    else
        ++accum_[stage].failedByError;
}

void
StreamMetrics::recordService(std::size_t stage, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    panic_if(stage >= accum_.size(), "stage index out of range");
    accum_[stage].serviceS.push_back(seconds);
}

void
StreamMetrics::recordBatch(std::size_t stage, std::size_t frames)
{
    std::lock_guard<std::mutex> lock(mutex_);
    panic_if(stage >= accum_.size(), "stage index out of range");
    StageAccum &a = accum_[stage];
    a.batch.add(static_cast<double>(frames));
    a.batchMax = std::max(a.batchMax, frames);
    a.batchFrames += frames;
}

void
StreamMetrics::recordQueueDepth(std::size_t stage, std::size_t depth)
{
    std::lock_guard<std::mutex> lock(mutex_);
    panic_if(stage >= accum_.size(), "stage index out of range");
    accum_[stage].depth.add(static_cast<double>(depth));
    accum_[stage].depthMax = std::max(accum_[stage].depthMax, depth);
}

void
StreamMetrics::recordCompleted(const StreamFrame &frame, double now_s)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++completed_;
    latencyS_.push_back(now_s - frame.emitS);
    analogJ_.add(frame.analogEnergyJ);
    systemJ_.add(frame.systemEnergyJ);
    if (frame.index < predictions_.size())
        predictions_[frame.index] = frame.predicted;
}

StreamReport
StreamMetrics::report(double wall_s) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    StreamReport r;
    r.framesOffered = offered_;
    r.framesAdmitted = admitted_;
    r.framesDropped = dropped_;
    r.framesFailed = failed_;
    r.framesCompleted = completed_;
    r.wallS = wall_s;
    if (wall_s > 0.0) {
        r.offeredFps = static_cast<double>(offered_) / wall_s;
        r.sustainedFps = static_cast<double>(completed_) / wall_s;
    }
    if (!latencyS_.empty()) {
        RunningStat lat;
        lat.addRange(latencyS_.begin(), latencyS_.end());
        r.latencyMeanS = lat.mean();
        r.latencyMaxS = lat.max();
        r.latencyP50S = percentile(latencyS_, 50.0);
        r.latencyP95S = percentile(latencyS_, 95.0);
        r.latencyP99S = percentile(latencyS_, 99.0);
    }
    r.analogEnergyMeanJ = analogJ_.mean();
    r.systemEnergyMeanJ = systemJ_.mean();

    for (std::size_t i = 0; i < stages_.size(); ++i) {
        StageReport sr;
        sr.name = stages_[i].name;
        sr.workers = stages_[i].workers;
        const auto &a = accum_[i];
        sr.processed = a.serviceS.size();
        sr.failed = a.failed;
        sr.failedByTimeout = a.failedByTimeout;
        sr.failedByError = a.failedByError;
        if (!a.serviceS.empty()) {
            RunningStat svc;
            svc.addRange(a.serviceS.begin(), a.serviceS.end());
            sr.serviceMeanS = svc.mean();
            sr.serviceMaxS = svc.max();
            sr.serviceP50S = percentile(a.serviceS, 50.0);
            sr.serviceP95S = percentile(a.serviceS, 95.0);
            sr.serviceP99S = percentile(a.serviceS, 99.0);
        }
        sr.queueDepthMean = a.depth.mean();
        sr.queueDepthMax = a.depthMax;
        if (a.batch.count() > 0) {
            // Batched stage: one service sample per batch, so count
            // frames from the batch sizes instead.
            sr.processed = a.batchFrames;
            sr.batches = a.batch.count();
            sr.batchMean = a.batch.mean();
            sr.batchMax = a.batchMax;
        }
        r.stages.push_back(std::move(sr));
    }
    r.predictions = predictions_;
    return r;
}

void
StreamReport::print(std::ostream &os) const
{
    TablePrinter run("streaming run");
    run.setHeader({"offered", "admitted", "dropped", "failed",
                   "completed", "wall", "offered fps",
                   "sustained fps"});
    run.addRow({std::to_string(framesOffered),
                std::to_string(framesAdmitted),
                std::to_string(framesDropped),
                std::to_string(framesFailed),
                std::to_string(framesCompleted),
                units::siFormat(wallS, "s"), fmt(offeredFps, 2),
                fmt(sustainedFps, 2)});
    run.print(os);
    os << "\n";

    TablePrinter lat("per-frame latency and energy");
    lat.setHeader({"p50", "p95", "p99", "max", "mean analog E",
                   "mean system E"});
    lat.addRow({units::siFormat(latencyP50S, "s"),
                units::siFormat(latencyP95S, "s"),
                units::siFormat(latencyP99S, "s"),
                units::siFormat(latencyMaxS, "s"),
                units::siFormat(analogEnergyMeanJ, "J"),
                units::siFormat(systemEnergyMeanJ, "J")});
    lat.print(os);
    os << "\n";

    TablePrinter st("stages");
    st.setHeader({"stage", "workers", "served", "failed", "f.timeout",
                  "f.error", "svc p50", "svc p95", "svc p99",
                  "queue mean", "queue max", "batch mean",
                  "batch max"});
    for (const StageReport &s : stages) {
        st.addRow({s.name, std::to_string(s.workers),
                   std::to_string(s.processed),
                   std::to_string(s.failed),
                   std::to_string(s.failedByTimeout),
                   std::to_string(s.failedByError),
                   units::siFormat(s.serviceP50S, "s"),
                   units::siFormat(s.serviceP95S, "s"),
                   units::siFormat(s.serviceP99S, "s"),
                   fmt(s.queueDepthMean, 2),
                   std::to_string(s.queueDepthMax),
                   s.batches ? fmt(s.batchMean, 2) : "-",
                   s.batches ? std::to_string(s.batchMax) : "-"});
    }
    st.print(os);
}

} // namespace stream
} // namespace redeye
