#include "stream/probe.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/logging.hh"
#include "nn/conv.hh"
#include "nn/pool.hh"

namespace redeye {
namespace stream {

namespace {

/**
 * The known test vector: an ascending ramp across the columns on row
 * 0 and the mirrored, descending ramp on row 1 (two rows make the
 * 2x2 max-pool window legal). A railed column reads near the ramp
 * maximum, which matches the expected value at one end of one ramp —
 * but never of both, so every dead column shows a large error on at
 * least one row. Within a pool window adjacent candidates differ by
 * one ramp step, so a comparator offset that flips the decision
 * produces a full-step error — detectable above the aligned-noise
 * floor.
 */
Tensor
probeRamp(std::size_t columns)
{
    Tensor ramp(Shape(1, 1, 2, columns));
    for (std::size_t x = 0; x < columns; ++x) {
        const auto v = static_cast<float>(
            0.1 + 0.8 * static_cast<double>(x) /
                      static_cast<double>(std::max<std::size_t>(
                          1, columns - 1)));
        ramp.at(0, 0, 0, x) = v;
        ramp.at(0, 0, 1, columns - 1 - x) = v;
    }
    return ramp;
}

/** Run the probe workload through one array. */
struct ProbeOutputs {
    Tensor conv;   ///< conv + readout, one value per column
    Tensor pooled; ///< 2-wide max pool, comparator decisions
};

ProbeOutputs
runWorkload(arch::ColumnArray &array, const Tensor &ramp,
            nn::ConvolutionLayer &conv,
            const nn::MaxPoolLayer &pool)
{
    ProbeOutputs out;
    Tensor convolved = array.runConvolution(ramp, conv, true);
    out.pooled = array.runMaxPool(convolved, pool);
    out.conv = array.runQuantization(convolved);
    return out;
}

} // namespace

std::string
ProbeReport::str() const
{
    std::ostringstream oss;
    oss << "probe: " << suspectColumns.size() << "/"
        << columnError.size() << " suspect columns [";
    for (std::size_t i = 0; i < suspectColumns.size(); ++i)
        oss << (i ? " " : "") << suspectColumns[i];
    oss << "]";
    return oss.str();
}

ProbeReport
runCalibrationProbe(const arch::ColumnArrayConfig &array_config,
                    const fault::FaultModel *faults,
                    std::uint64_t frame, const ProbeConfig &config)
{
    fatal_if(config.threshold <= 0.0,
             "probe threshold must be positive");
    const std::size_t columns = array_config.columns;

    const Tensor ramp = probeRamp(columns);

    // Unit-weight 1x1 convolution: output x == input x, per column.
    nn::ConvParams conv_params = nn::ConvParams::square(1, 1);
    conv_params.bias = false;
    nn::ConvolutionLayer conv("probe/conv", conv_params);
    conv.outputShape({ramp.shape()}); // materialize the weights
    conv.weights() = Tensor(conv.weights().shape(), 1.0f);

    nn::MaxPoolLayer pool("probe/pool", nn::PoolParams{2, 1, 0});

    // Identically seeded arrays realize identical noise; the
    // difference below is purely the fault contribution.
    const auto process = analog::ProcessParams::typical();
    arch::ColumnArray reference(array_config, process,
                                Rng(config.seed));
    arch::ColumnArray probed(array_config, process, Rng(config.seed));
    probed.armFaults(faults, frame);

    const ProbeOutputs want = runWorkload(reference, ramp, conv, pool);
    const ProbeOutputs got = runWorkload(probed, ramp, conv, pool);

    const double scale = std::max(
        1e-12, static_cast<double>(want.conv.absMax()));

    ProbeReport report;
    report.columnError.assign(columns, 0.0);
    for (std::size_t x = 0; x < columns; ++x) {
        for (std::size_t y = 0; y < want.conv.shape().h; ++y) {
            report.columnError[x] = std::max(
                report.columnError[x],
                std::abs(got.conv.at(0, 0, y, x) -
                         want.conv.at(0, 0, y, x)) /
                    scale);
        }
    }
    // Max-pool output x is served by column x's comparator (kernel 2,
    // stride 1) but draws candidates from columns x and x+1 — skip
    // windows whose inputs the conv check already flagged, so a
    // railed neighbour cannot smear onto a healthy comparator.
    for (std::size_t x = 0; x < want.pooled.shape().w; ++x) {
        if (report.columnError[x] > config.threshold ||
            report.columnError[x + 1] > config.threshold) {
            continue;
        }
        report.columnError[x] = std::max(
            report.columnError[x],
            static_cast<double>(std::abs(got.pooled.at(0, 0, 0, x) -
                                         want.pooled.at(0, 0, 0, x))) /
                scale);
    }

    for (std::size_t x = 0; x < columns; ++x) {
        if (report.columnError[x] > config.threshold)
            report.suspectColumns.push_back(x);
    }
    return report;
}

} // namespace stream
} // namespace redeye
