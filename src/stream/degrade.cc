#include "stream/degrade.hh"

#include <algorithm>
#include <sstream>

#include "core/logging.hh"

namespace redeye {
namespace stream {

const char *
degradeModeName(DegradeMode mode)
{
    switch (mode) {
      case DegradeMode::Normal:
        return "normal";
      case DegradeMode::Remap:
        return "remap";
      case DegradeMode::Bypass:
        return "bypass";
    }
    return "?";
}

std::string
DegradePlan::str() const
{
    std::ostringstream oss;
    oss << degradeModeName(mode);
    if (mode == DegradeMode::Remap) {
        oss << ": " << suspectColumns.size()
            << " suspect columns remapped";
        if (adcBits)
            oss << ", adc -> " << adcBits << "b";
    } else if (mode == DegradeMode::Bypass) {
        oss << ": " << suspectColumns.size()
            << " suspect columns, analog stage bypassed";
    }
    return oss.str();
}

DegradePlan
planDegradation(const ProbeReport &probe,
                const arch::ColumnArrayConfig &array_config,
                const DegradationPolicyConfig &config)
{
    const std::size_t columns = array_config.columns;
    fatal_if(probe.columnError.size() != columns,
             "probe covered ", probe.columnError.size(),
             " columns, array has ", columns);

    DegradePlan plan;
    plan.suspectColumns = probe.suspectColumns;
    if (plan.suspectColumns.empty())
        return plan; // Normal

    const double fraction =
        static_cast<double>(plan.suspectColumns.size()) /
        static_cast<double>(columns);
    if (fraction >= config.bypassSuspectFraction) {
        plan.mode = DegradeMode::Bypass;
        return plan;
    }

    // Remap: serve every logical position from a healthy column.
    // Healthy positions keep their own column (their buffered samples
    // stay local); suspect positions borrow healthy columns
    // round-robin, spreading the doubled-up work evenly.
    std::vector<bool> suspect(columns, false);
    for (std::size_t s : plan.suspectColumns)
        suspect[s] = true;
    std::vector<std::size_t> healthy;
    for (std::size_t c = 0; c < columns; ++c) {
        if (!suspect[c])
            healthy.push_back(c);
    }
    panic_if(healthy.empty(), "remap with no healthy columns");

    plan.mode = DegradeMode::Remap;
    plan.columnMap.resize(columns);
    std::size_t next = 0;
    for (std::size_t c = 0; c < columns; ++c) {
        if (!suspect[c]) {
            plan.columnMap[c] = c;
        } else {
            plan.columnMap[c] = healthy[next % healthy.size()];
            ++next;
        }
    }

    if (config.adcBoostBits > 0) {
        plan.adcBits = std::min(10u, array_config.adcBits +
                                         config.adcBoostBits);
    }
    return plan;
}

} // namespace stream
} // namespace redeye
