#include "stream/degrade.hh"

#include <algorithm>
#include <sstream>

#include "core/logging.hh"
#include "core/structural_hash.hh"

namespace redeye {
namespace stream {

const char *
degradeModeName(DegradeMode mode)
{
    switch (mode) {
      case DegradeMode::Normal:
        return "normal";
      case DegradeMode::Remap:
        return "remap";
      case DegradeMode::Bypass:
        return "bypass";
    }
    return "?";
}

std::string
DegradePlan::str() const
{
    std::ostringstream oss;
    oss << degradeModeName(mode);
    if (mode == DegradeMode::Remap) {
        oss << ": " << suspectColumns.size()
            << " suspect columns remapped";
        if (adcBits)
            oss << ", adc -> " << adcBits << "b";
    } else if (mode == DegradeMode::Bypass) {
        oss << ": " << suspectColumns.size()
            << " suspect columns, analog stage bypassed";
    }
    return oss.str();
}

DegradePlan
planDegradation(const ProbeReport &probe,
                const arch::ColumnArrayConfig &array_config,
                const DegradationPolicyConfig &config)
{
    const std::size_t columns = array_config.columns;
    fatal_if(probe.columnError.size() != columns,
             "probe covered ", probe.columnError.size(),
             " columns, array has ", columns);

    DegradePlan plan;
    plan.suspectColumns = probe.suspectColumns;
    if (plan.suspectColumns.empty())
        return plan; // Normal

    const double fraction =
        static_cast<double>(plan.suspectColumns.size()) /
        static_cast<double>(columns);
    if (fraction >= config.bypassSuspectFraction) {
        plan.mode = DegradeMode::Bypass;
        return plan;
    }

    // Remap: serve every logical position from a healthy column.
    // Healthy positions keep their own column (their buffered samples
    // stay local); suspect positions borrow healthy columns
    // round-robin, spreading the doubled-up work evenly.
    std::vector<bool> suspect(columns, false);
    for (std::size_t s : plan.suspectColumns)
        suspect[s] = true;
    std::vector<std::size_t> healthy;
    for (std::size_t c = 0; c < columns; ++c) {
        if (!suspect[c])
            healthy.push_back(c);
    }
    panic_if(healthy.empty(), "remap with no healthy columns");

    plan.mode = DegradeMode::Remap;
    plan.columnMap.resize(columns);
    std::size_t next = 0;
    for (std::size_t c = 0; c < columns; ++c) {
        if (!suspect[c]) {
            plan.columnMap[c] = c;
        } else {
            plan.columnMap[c] = healthy[next % healthy.size()];
            ++next;
        }
    }

    if (config.adcBoostBits > 0) {
        plan.adcBits = std::min(10u, array_config.adcBits +
                                         config.adcBoostBits);
    }
    return plan;
}

std::uint64_t
degradePlanKey(std::uint64_t epoch,
               const arch::ColumnArrayConfig &array_config,
               const DegradationPolicyConfig &config)
{
    StructuralHasher h(/*salt=*/0x44677264u); // 'Dgrd'
    h.mix(epoch);
    h.mix(array_config.columns)
        .mixDouble(array_config.convSnrDb)
        .mix(array_config.weightBits)
        .mix(array_config.adcBits);
    h.mix(config.probePeriod)
        .mixDouble(config.probeThreshold)
        .mixDouble(config.bypassSuspectFraction)
        .mix(config.adcBoostBits);
    return h.digest();
}

const DegradePlan &
DegradePlanCache::fetch(std::uint64_t key,
                        FunctionRef<DegradePlan()> compute)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = plans_.find(key);
        if (it != plans_.end()) {
            ++hits_;
            return it->second;
        }
    }
    // Compute outside the lock: probing is slow and pure, so a racing
    // duplicate is wasted work, not a correctness hazard.
    DegradePlan plan = compute();
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = plans_.emplace(key, std::move(plan));
    if (inserted)
        ++misses_;
    else
        ++hits_;
    return it->second;
}

std::uint64_t
DegradePlanCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
DegradePlanCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::size_t
DegradePlanCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return plans_.size();
}

} // namespace stream
} // namespace redeye
