#include "stream/vision.hh"

#include <algorithm>
#include <map>
#include <memory>

#include "core/exec.hh"
#include "core/logging.hh"
#include "core/workspace.hh"
#include "models/mini_googlenet.hh"
#include "models/partition.hh"
#include "nn/serialize.hh"
#include "redeye/device.hh"
#include "system/ble.hh"
#include "system/jetson.hh"

namespace redeye {
namespace stream {

namespace {

/** Index of the largest value in row[0..n). */
std::int32_t
argmaxRow(const float *row, std::size_t n)
{
    std::int32_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
        if (row[i] > row[best])
            best = static_cast<std::int32_t>(i);
    }
    return best;
}

/** Index of the largest logit. */
std::int32_t
argmax(const Tensor &logits)
{
    return argmaxRow(logits.data(), logits.size());
}

/** Sensor stage: per-worker sampling-layer replica. */
struct SensorWorker {
    noise::SensorSamplingLayer layer;
    Tensor scratch;                    ///< recycled input buffers
    std::vector<const Tensor *> ins{nullptr}; ///< persistent arg list

    explicit SensorWorker(const VisionConfig &cfg)
        : layer("stream/sensor", cfg.sensor, Rng(cfg.sensorSeed))
    {
    }

    void
    process(StreamFrame &frame)
    {
        // Key the noise to the frame index: every replica realizes
        // the same raw sample for the same frame.
        layer.setPass(frame.index);
        // Swap the incoming pixels into the scratch slot and sample
        // back into the frame's buffers: both tensors keep their
        // storage across frames, so steady state allocates nothing.
        std::swap(frame.image, scratch);
        ins[0] = &scratch;
        layer.forward(ins, frame.image);
    }
};

/** Device stage: network replica + per-frame functional device. */
struct DeviceWorker {
    VisionConfig cfg;
    std::unique_ptr<nn::Network> net;
    std::vector<std::string> layers;
    arch::ColumnArrayConfig array;

    explicit DeviceWorker(const VisionConfig &config) : cfg(config)
    {
        Rng weights(cfg.weightSeed);
        net = models::buildMiniGoogLeNet(cfg.classes, weights);
        if (cfg.weights)
            nn::copyWeightsByName(*net, *cfg.weights);
        layers = models::miniGoogLeNetAnalogLayers(cfg.depth);
        array.columns = models::kMiniInputSize;
        array.convSnrDb = cfg.convSnrDb;
        array.weightBits = cfg.weightBits;
        array.adcBits = cfg.adcBits;
        // Fallback for direct construction outside makeVisionStages
        // (which installs a pipeline-shared instance).
        if (cfg.degrade.enabled && !cfg.planCache)
            cfg.planCache = std::make_shared<DegradePlanCache>();
    }

    /**
     * Degradation plan for the epoch containing @p index, fetched
     * from the pipeline-shared content-addressed cache: probing is a
     * pure function of (fault model, epoch, operating point), so the
     * first worker to reach an epoch plans for all of them —
     * bit-identical frames regardless of worker count.
     */
    const DegradePlan &
    planFor(std::uint64_t index)
    {
        const std::uint64_t epoch = index / cfg.degrade.probePeriod;
        return cfg.planCache->fetch(
            degradePlanKey(epoch, array, cfg.degrade), [&] {
                ProbeConfig pc;
                pc.threshold = cfg.degrade.probeThreshold;
                const ProbeReport probe = runCalibrationProbe(
                    array, cfg.faults.get(),
                    epoch * cfg.degrade.probePeriod, pc);
                return planDegradation(probe, array, cfg.degrade);
            });
    }

    void
    process(StreamFrame &frame)
    {
        // Consult the degradation plan before touching the device: a
        // bypassed frame must not pay for (or allocate) an analog
        // array it will never use.
        const DegradePlan *plan = nullptr;
        if (cfg.faults && cfg.degrade.enabled) {
            plan = &planFor(frame.index);
            if (plan->mode == DegradeMode::Bypass) {
                // Hardware past saving: hand the raw frame to the
                // host's full digital network.
                frame.analogBypassed = true;
                frame.features = frame.image;
                frame.analogEnergyJ = 0.0;
                return;
            }
        }
        // A fresh device per frame, seeded by the frame index: the
        // realized analog noise (and therefore the exported features
        // and energy) is a pure function of the index.
        arch::RedEyeDevice device(
            array, analog::ProcessParams::typical(),
            Rng(streamRng(cfg.deviceSeed, 0, frame.index).raw()));
        if (cfg.faults) {
            device.armFaults(cfg.faults.get(), frame.index);
            if (plan && plan->mode == DegradeMode::Remap) {
                device.array().setColumnMap(plan->columnMap);
                if (plan->adcBits)
                    device.array().setAdcBits(plan->adcBits);
            }
        }
        auto run = device.run(*net, layers, frame.image);
        frame.features = std::move(run.features);
        frame.analogEnergyJ = run.energy.totalJ();
    }
};

/** Host stage: digital tail replica + system energy model. */
struct HostWorker {
    VisionConfig cfg;
    std::unique_ptr<nn::Network> full; ///< bypass path (degradation)
    std::unique_ptr<nn::Network> tail;
    double hostEnergyJ = 0.0;   ///< model energy of the digital tail
    double bypassEnergyJ = 0.0; ///< full digital net, analog bypassed

    /**
     * Batched-tail replica pinned to one padded batch size. Network
     * activation plans reallocate whenever the batch extent changes,
     * so dynamic batch sizes are rounded up to a small set of
     * buckets (powers of two, capped at hostBatch) whose replicas
     * and staging tensors persist across batches — steady-state
     * batched serving touches the heap exactly never.
     */
    struct Bucket {
        std::size_t size = 0;
        std::unique_ptr<nn::Network> net;
        Tensor input; ///< (size, cut) staging buffer
    };
    std::vector<Bucket> buckets;
    std::vector<std::size_t> liveIdx; ///< non-bypassed batch slots

    /**
     * Execution context for every forward this worker runs. With
     * hostThreads > 1 it carries a private ThreadPool (plus a
     * matching multi-lane workspace) that the blocked GEMM backend
     * fans each tail product out over; the per-pool nesting rule in
     * core/exec.hh is what lets this worker — itself a chunk of the
     * runner's pool — dispatch onto its own pool. The networks' conv
     * layers draw im2col scratch and GEMM pack panels from the
     * arenas, so after warm-up the host stage performs no heap
     * allocation at any thread count or batch size.
     */
    std::unique_ptr<ThreadPool> pool;
    Workspace workspace;
    ExecContext ctx;

    explicit HostWorker(const VisionConfig &config)
        : cfg(config),
          pool(cfg.hostThreads > 1
                   ? std::make_unique<ThreadPool>(cfg.hostThreads)
                   : nullptr),
          workspace(std::max<std::size_t>(cfg.hostThreads, 1))
    {
        if (pool)
            ctx = ExecContext(*pool);
        ctx.setWorkspace(&workspace);
        Rng weights(cfg.weightSeed);
        full = models::buildMiniGoogLeNet(cfg.classes, weights);
        if (cfg.weights)
            nn::copyWeightsByName(*full, *cfg.weights);
        const auto analog_layers =
            models::miniGoogLeNetAnalogLayers(cfg.depth);
        const Shape cut = full->nodeShape(analog_layers.back());

        Rng tail_init(cfg.weightSeed ^ 0x7a11);
        tail = models::buildMiniGoogLeNetTail(cfg.depth, cfg.classes,
                                              cut, tail_init);
        nn::copyWeightsByName(*tail, *full);

        // Batched-tail buckets: powers of two strictly below
        // hostBatch, then hostBatch itself. Each replica is seeded
        // exactly like `tail` (then overwritten from `full`), so all
        // replicas hold identical parameters.
        if (cfg.hostBatch > 1) {
            std::size_t sz = 2;
            for (;; sz *= 2) {
                const std::size_t b = std::min(sz, cfg.hostBatch);
                Rng bucket_init(cfg.weightSeed ^ 0x7a11);
                Bucket bk;
                bk.size = b;
                bk.net = models::buildMiniGoogLeNetTail(
                    cfg.depth, cfg.classes, cut, bucket_init);
                nn::copyWeightsByName(*bk.net, *full);
                bk.input = Tensor(Shape(b, cut.c, cut.h, cut.w));
                buckets.push_back(std::move(bk));
                if (b == cfg.hostBatch)
                    break;
            }
            liveIdx.reserve(cfg.hostBatch);
        }

        const double tail_macs = static_cast<double>(
            models::digitalTailMacs(*full, analog_layers));
        const double full_macs =
            static_cast<double>(full->totalMacs());
        switch (cfg.host) {
          case HostTail::JetsonGpu:
          case HostTail::JetsonCpu: {
            sys::JetsonTk1 host(sys::JetsonParams::paper(
                cfg.host == HostTail::JetsonGpu
                    ? sys::JetsonProcessor::GPU
                    : sys::JetsonProcessor::CPU,
                full_macs, tail_macs));
            hostEnergyJ = host.executionEnergyJ(tail_macs);
            bypassEnergyJ = host.executionEnergyJ(full_macs);
            break;
          }
          case HostTail::Cloudlet: {
            const double payload_bytes =
                static_cast<double>(cut.size()) * cfg.adcBits / 8.0;
            hostEnergyJ =
                sys::BleLink().transferEnergyJ(payload_bytes);
            // Bypass ships raw 8-bit pixels instead of features.
            const Shape in = full->inputShape();
            bypassEnergyJ = sys::BleLink().transferEnergyJ(
                static_cast<double>(in.sliceSize()));
            break;
          }
        }

        // Pre-warm every replica once: activation plans, arena spans
        // and GEMM pack panels all materialize here, so the first
        // real serve at any batch size — which may first form long
        // after a run's measurement warm-up window — allocates
        // nothing.
        Tensor warm(Shape(1, cut.c, cut.h, cut.w));
        warm.zero();
        tail->forward(warm, ctx);
        Tensor warm_full(full->inputShape());
        warm_full.zero();
        full->forward(warm_full, ctx);
        for (Bucket &bk : buckets) {
            bk.input.zero();
            bk.net->forward(bk.input, ctx);
        }
    }

    /** Smallest bucket holding @p frames items. */
    Bucket &
    bucketFor(std::size_t frames)
    {
        for (Bucket &bk : buckets) {
            if (bk.size >= frames)
                return bk;
        }
        panic("host batch exceeds every bucket");
    }

    void
    process(StreamFrame &frame)
    {
        if (frame.analogBypassed) {
            // The degradation policy routed around the analog stage:
            // `features` carries the raw sampled image and the full
            // digital network serves the frame.
            frame.predicted =
                argmax(full->forward(frame.features, ctx));
            frame.systemEnergyJ = bypassEnergyJ;
            return;
        }
        frame.predicted = argmax(tail->forward(frame.features, ctx));
        frame.systemEnergyJ = frame.analogEnergyJ + hostEnergyJ;
    }

    /**
     * Serve a coalesced batch: one tail forward over all the
     * non-bypassed frames' features, gathered into a bucket's
     * staging tensor. Every layer in the tail treats batch items
     * independently, so each frame's logits are bit-identical to the
     * per-frame path regardless of which frames shared the batch or
     * how the batch was padded — the runner's determinism contract
     * survives timing-dependent coalescing.
     */
    void
    processBatch(std::vector<StreamFrame> &frames)
    {
        liveIdx.clear();
        for (std::size_t i = 0; i < frames.size(); ++i) {
            if (frames[i].analogBypassed)
                process(frames[i]); // rare degradation path: full net
            else
                liveIdx.push_back(i);
        }
        if (liveIdx.empty())
            return;
        if (liveIdx.size() == 1) {
            process(frames[liveIdx[0]]);
            return;
        }

        Bucket &bk = bucketFor(liveIdx.size());
        const std::size_t slice = bk.input.shape().sliceSize();
        float *dst = bk.input.data();
        for (std::size_t r = 0; r < liveIdx.size(); ++r) {
            const Tensor &src = frames[liveIdx[r]].features;
            panic_if(src.size() != slice,
                     "host batch: feature shape mismatch");
            std::copy(src.data(), src.data() + slice,
                      dst + r * slice);
        }
        // Pad rows replicate row 0: per-item independence keeps the
        // real rows' logits invariant to the padding, and replaying a
        // real frame keeps the padded arithmetic free of surprises
        // (no uninitialized or degenerate inputs).
        for (std::size_t r = liveIdx.size(); r < bk.size; ++r)
            std::copy(dst, dst + slice, dst + r * slice);

        const Tensor &logits = bk.net->forward(bk.input, ctx);
        const std::size_t classes = logits.shape().sliceSize();
        for (std::size_t r = 0; r < liveIdx.size(); ++r) {
            StreamFrame &f = frames[liveIdx[r]];
            f.predicted =
                argmaxRow(logits.data() + r * classes, classes);
            f.systemEnergyJ = f.analogEnergyJ + hostEnergyJ;
        }
    }
};

} // namespace

const char *
hostTailName(HostTail host)
{
    switch (host) {
      case HostTail::JetsonGpu:
        return "jetson-gpu";
      case HostTail::JetsonCpu:
        return "jetson-cpu";
      case HostTail::Cloudlet:
        return "cloudlet";
    }
    return "?";
}

std::vector<StageSpec>
makeVisionStages(const VisionConfig &config_in)
{
    fatal_if(config_in.depth < 1 || config_in.depth > 5,
             "vision depth must be in [1, 5]");
    fatal_if(config_in.degrade.enabled &&
                 config_in.degrade.probePeriod == 0,
             "degradation probe period must be >= 1");
    fatal_if(config_in.hostThreads == 0,
             "hostThreads must be positive");
    fatal_if(config_in.hostBatch == 0, "hostBatch must be positive");
    fatal_if(config_in.hostBatchWaitS < 0.0,
             "hostBatchWaitS must be non-negative");

    // Materialize the shared plan cache here, before the per-worker
    // config copies are captured: every device worker must hold the
    // same cache instance.
    VisionConfig config = config_in;
    if (config.degrade.enabled && !config.planCache)
        config.planCache = std::make_shared<DegradePlanCache>();

    std::vector<StageSpec> stages;
    stages.push_back(StageSpec{
        "sensor", config.sensorWorkers, [config](std::size_t) {
            auto state = std::make_shared<SensorWorker>(config);
            return [state](StreamFrame &f) { state->process(f); };
        }});
    stages.push_back(StageSpec{
        "redeye", config.deviceWorkers, [config](std::size_t) {
            auto state = std::make_shared<DeviceWorker>(config);
            return [state](StreamFrame &f) { state->process(f); };
        }});
    StageSpec host;
    host.name = "host";
    host.workers = config.hostWorkers;
    if (config.hostBatch > 1) {
        host.maxBatch = config.hostBatch;
        host.maxBatchWaitS = config.hostBatchWaitS;
        host.makeBatchWorker = [config](std::size_t) {
            auto state = std::make_shared<HostWorker>(config);
            return [state](std::vector<StreamFrame> &batch) {
                state->processBatch(batch);
            };
        };
    } else {
        host.makeWorker = [config](std::size_t) {
            auto state = std::make_shared<HostWorker>(config);
            return [state](StreamFrame &f) { state->process(f); };
        };
    }
    stages.push_back(std::move(host));
    return stages;
}

data::Dataset
makeReplayDataset(std::size_t per_class, std::uint64_t seed)
{
    Rng rng(seed);
    return data::generateShapes(per_class, data::ShapesParams{}, rng);
}

} // namespace stream
} // namespace redeye
