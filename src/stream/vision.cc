#include "stream/vision.hh"

#include <algorithm>
#include <map>
#include <memory>

#include "core/exec.hh"
#include "core/logging.hh"
#include "core/workspace.hh"
#include "models/mini_googlenet.hh"
#include "models/partition.hh"
#include "nn/serialize.hh"
#include "redeye/device.hh"
#include "system/ble.hh"
#include "system/jetson.hh"

namespace redeye {
namespace stream {

namespace {

/** Index of the largest logit. */
std::int32_t
argmax(const Tensor &logits)
{
    std::int32_t best = 0;
    for (std::size_t i = 1; i < logits.size(); ++i) {
        if (logits[i] > logits[best])
            best = static_cast<std::int32_t>(i);
    }
    return best;
}

/** Sensor stage: per-worker sampling-layer replica. */
struct SensorWorker {
    noise::SensorSamplingLayer layer;
    Tensor scratch;                    ///< recycled input buffers
    std::vector<const Tensor *> ins{nullptr}; ///< persistent arg list

    explicit SensorWorker(const VisionConfig &cfg)
        : layer("stream/sensor", cfg.sensor, Rng(cfg.sensorSeed))
    {
    }

    void
    process(StreamFrame &frame)
    {
        // Key the noise to the frame index: every replica realizes
        // the same raw sample for the same frame.
        layer.setPass(frame.index);
        // Swap the incoming pixels into the scratch slot and sample
        // back into the frame's buffers: both tensors keep their
        // storage across frames, so steady state allocates nothing.
        std::swap(frame.image, scratch);
        ins[0] = &scratch;
        layer.forward(ins, frame.image);
    }
};

/** Device stage: network replica + per-frame functional device. */
struct DeviceWorker {
    VisionConfig cfg;
    std::unique_ptr<nn::Network> net;
    std::vector<std::string> layers;
    arch::ColumnArrayConfig array;

    explicit DeviceWorker(const VisionConfig &config) : cfg(config)
    {
        Rng weights(cfg.weightSeed);
        net = models::buildMiniGoogLeNet(cfg.classes, weights);
        if (cfg.weights)
            nn::copyWeightsByName(*net, *cfg.weights);
        layers = models::miniGoogLeNetAnalogLayers(cfg.depth);
        array.columns = models::kMiniInputSize;
        array.convSnrDb = cfg.convSnrDb;
        array.weightBits = cfg.weightBits;
        array.adcBits = cfg.adcBits;
        // Fallback for direct construction outside makeVisionStages
        // (which installs a pipeline-shared instance).
        if (cfg.degrade.enabled && !cfg.planCache)
            cfg.planCache = std::make_shared<DegradePlanCache>();
    }

    /**
     * Degradation plan for the epoch containing @p index, fetched
     * from the pipeline-shared content-addressed cache: probing is a
     * pure function of (fault model, epoch, operating point), so the
     * first worker to reach an epoch plans for all of them —
     * bit-identical frames regardless of worker count.
     */
    const DegradePlan &
    planFor(std::uint64_t index)
    {
        const std::uint64_t epoch = index / cfg.degrade.probePeriod;
        return cfg.planCache->fetch(
            degradePlanKey(epoch, array, cfg.degrade), [&] {
                ProbeConfig pc;
                pc.threshold = cfg.degrade.probeThreshold;
                const ProbeReport probe = runCalibrationProbe(
                    array, cfg.faults.get(),
                    epoch * cfg.degrade.probePeriod, pc);
                return planDegradation(probe, array, cfg.degrade);
            });
    }

    void
    process(StreamFrame &frame)
    {
        // Consult the degradation plan before touching the device: a
        // bypassed frame must not pay for (or allocate) an analog
        // array it will never use.
        const DegradePlan *plan = nullptr;
        if (cfg.faults && cfg.degrade.enabled) {
            plan = &planFor(frame.index);
            if (plan->mode == DegradeMode::Bypass) {
                // Hardware past saving: hand the raw frame to the
                // host's full digital network.
                frame.analogBypassed = true;
                frame.features = frame.image;
                frame.analogEnergyJ = 0.0;
                return;
            }
        }
        // A fresh device per frame, seeded by the frame index: the
        // realized analog noise (and therefore the exported features
        // and energy) is a pure function of the index.
        arch::RedEyeDevice device(
            array, analog::ProcessParams::typical(),
            Rng(streamRng(cfg.deviceSeed, 0, frame.index).raw()));
        if (cfg.faults) {
            device.armFaults(cfg.faults.get(), frame.index);
            if (plan && plan->mode == DegradeMode::Remap) {
                device.array().setColumnMap(plan->columnMap);
                if (plan->adcBits)
                    device.array().setAdcBits(plan->adcBits);
            }
        }
        auto run = device.run(*net, layers, frame.image);
        frame.features = std::move(run.features);
        frame.analogEnergyJ = run.energy.totalJ();
    }
};

/** Host stage: digital tail replica + system energy model. */
struct HostWorker {
    VisionConfig cfg;
    std::unique_ptr<nn::Network> full; ///< bypass path (degradation)
    std::unique_ptr<nn::Network> tail;
    double hostEnergyJ = 0.0;   ///< model energy of the digital tail
    double bypassEnergyJ = 0.0; ///< full digital net, analog bypassed

    /**
     * Serial execution context with a one-lane workspace: the
     * networks' conv layers draw im2col scratch from the arena, so
     * after the first frame of a given shape the host stage performs
     * no heap allocation.
     */
    Workspace workspace{1};
    ExecContext ctx;

    explicit HostWorker(const VisionConfig &config) : cfg(config)
    {
        ctx.setWorkspace(&workspace);
        Rng weights(cfg.weightSeed);
        full = models::buildMiniGoogLeNet(cfg.classes, weights);
        if (cfg.weights)
            nn::copyWeightsByName(*full, *cfg.weights);
        const auto analog_layers =
            models::miniGoogLeNetAnalogLayers(cfg.depth);
        const Shape cut = full->nodeShape(analog_layers.back());

        Rng tail_init(cfg.weightSeed ^ 0x7a11);
        tail = models::buildMiniGoogLeNetTail(cfg.depth, cfg.classes,
                                              cut, tail_init);
        nn::copyWeightsByName(*tail, *full);

        const double tail_macs = static_cast<double>(
            models::digitalTailMacs(*full, analog_layers));
        const double full_macs =
            static_cast<double>(full->totalMacs());
        switch (cfg.host) {
          case HostTail::JetsonGpu:
          case HostTail::JetsonCpu: {
            sys::JetsonTk1 host(sys::JetsonParams::paper(
                cfg.host == HostTail::JetsonGpu
                    ? sys::JetsonProcessor::GPU
                    : sys::JetsonProcessor::CPU,
                full_macs, tail_macs));
            hostEnergyJ = host.executionEnergyJ(tail_macs);
            bypassEnergyJ = host.executionEnergyJ(full_macs);
            break;
          }
          case HostTail::Cloudlet: {
            const double payload_bytes =
                static_cast<double>(cut.size()) * cfg.adcBits / 8.0;
            hostEnergyJ =
                sys::BleLink().transferEnergyJ(payload_bytes);
            // Bypass ships raw 8-bit pixels instead of features.
            const Shape in = full->inputShape();
            bypassEnergyJ = sys::BleLink().transferEnergyJ(
                static_cast<double>(in.sliceSize()));
            break;
          }
        }
    }

    void
    process(StreamFrame &frame)
    {
        if (frame.analogBypassed) {
            // The degradation policy routed around the analog stage:
            // `features` carries the raw sampled image and the full
            // digital network serves the frame.
            frame.predicted =
                argmax(full->forward(frame.features, ctx));
            frame.systemEnergyJ = bypassEnergyJ;
            return;
        }
        frame.predicted = argmax(tail->forward(frame.features, ctx));
        frame.systemEnergyJ = frame.analogEnergyJ + hostEnergyJ;
    }
};

} // namespace

const char *
hostTailName(HostTail host)
{
    switch (host) {
      case HostTail::JetsonGpu:
        return "jetson-gpu";
      case HostTail::JetsonCpu:
        return "jetson-cpu";
      case HostTail::Cloudlet:
        return "cloudlet";
    }
    return "?";
}

std::vector<StageSpec>
makeVisionStages(const VisionConfig &config_in)
{
    fatal_if(config_in.depth < 1 || config_in.depth > 5,
             "vision depth must be in [1, 5]");
    fatal_if(config_in.degrade.enabled &&
                 config_in.degrade.probePeriod == 0,
             "degradation probe period must be >= 1");

    // Materialize the shared plan cache here, before the per-worker
    // config copies are captured: every device worker must hold the
    // same cache instance.
    VisionConfig config = config_in;
    if (config.degrade.enabled && !config.planCache)
        config.planCache = std::make_shared<DegradePlanCache>();

    std::vector<StageSpec> stages;
    stages.push_back(StageSpec{
        "sensor", config.sensorWorkers, [config](std::size_t) {
            auto state = std::make_shared<SensorWorker>(config);
            return [state](StreamFrame &f) { state->process(f); };
        }});
    stages.push_back(StageSpec{
        "redeye", config.deviceWorkers, [config](std::size_t) {
            auto state = std::make_shared<DeviceWorker>(config);
            return [state](StreamFrame &f) { state->process(f); };
        }});
    stages.push_back(StageSpec{
        "host", config.hostWorkers, [config](std::size_t) {
            auto state = std::make_shared<HostWorker>(config);
            return [state](StreamFrame &f) { state->process(f); };
        }});
    return stages;
}

data::Dataset
makeReplayDataset(std::size_t per_class, std::uint64_t seed)
{
    Rng rng(seed);
    return data::generateShapes(per_class, data::ShapesParams{}, rng);
}

} // namespace stream
} // namespace redeye
