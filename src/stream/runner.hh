/**
 * @file
 * StreamRunner: a bounded multi-stage streaming pipeline.
 *
 * One source worker paces frames out of a FrameSource according to an
 * ArrivalSchedule and admits them into the first bounded queue under
 * a configurable admission policy; each stage's workers pop from
 * their inbound queue, apply the stage function, and push downstream
 * with blocking backpressure. All workers are long-lived chunks of a
 * single ThreadPool::run() call (core/exec.hh), so the runtime reuses
 * the repo's pooled-execution substrate rather than raw threads.
 *
 * ## Backpressure and drop semantics
 *
 * Only the admission queue drops frames; inter-stage pushes always
 * block. A slow stage therefore fills the queues behind it until the
 * pressure reaches admission, where the policy decides: Block turns
 * the source into a closed loop (no drops, arrival pacing slips),
 * DropNewest rejects the arriving frame, DropOldest evicts the
 * stalest admitted-but-unserved frame. In both drop modes the queue
 * bound caps the queueing delay of every admitted frame, so tail
 * latency stays bounded past saturation.
 *
 * ## Determinism contract
 *
 * Frame *content* (pixels, features, predictions, energies) is a pure
 * function of the frame index: sources and stages key all their
 * randomness with counter-based streams (core/rng.hh). Which frames
 * complete, and all timing metrics, depend on real-time scheduling —
 * only the content of a completed frame index is reproducible.
 *
 * ## Shutdown and drain
 *
 * The source closes the admission queue after the last frame (or as
 * soon as requestStop() is observed); each stage closes its outbound
 * queue when its last worker has drained the inbound one. run()
 * returns once every in-flight frame has either completed or been
 * dropped — a clean drain on every path. A stage function that
 * throws aborts the run: all queues close, workers unwind, and the
 * first exception is rethrown from run() (tryRun() converts it to a
 * Status instead).
 *
 * ## Dynamic batching
 *
 * A stage built with StageSpec::makeBatchWorker coalesces queued
 * frames into one worker invocation: the worker blocks for the first
 * frame, drains whatever else is already queued, then spends at most
 * StageSpec::maxBatchWaitS waiting for stragglers before serving the
 * batch (never more than maxBatch frames). The wait knob is the
 * latency budget: it bounds the extra queueing delay batching can add
 * to the first frame of a partial batch. Admission policies, the
 * frame pool and the watchdog all compose with batching — drops still
 * happen only at admission, every frame of a batch is recycled
 * individually, and the watchdog treats the batch as one unit of
 * service (a deadline overrun fails every frame in it).
 *
 * ## Watchdog
 *
 * With RunnerConfig::stageTimeoutS > 0 a watchdog thread scans the
 * per-worker hand-off slots: a frame held past the deadline is
 * immediately counted failed (StreamReport::framesFailed) and, once
 * the stalled stage function returns, dropped instead of forwarded.
 * A frame that wedges one worker therefore costs exactly that frame;
 * the remaining workers keep the pipeline live and run() still
 * drains cleanly. Stages can also surrender a frame voluntarily by
 * setting StreamFrame::failed.
 */

#ifndef REDEYE_STREAM_RUNNER_HH
#define REDEYE_STREAM_RUNNER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/queue.hh"
#include "core/status.hh"
#include "stream/frame.hh"
#include "stream/frame_source.hh"
#include "stream/metrics.hh"

namespace redeye {
namespace stream {

/** What happens when a frame arrives at a full admission queue. */
enum class AdmissionPolicy {
    Block,      ///< source blocks (closed-loop, lossless)
    DropNewest, ///< reject the arriving frame
    DropOldest, ///< evict the stalest queued frame
};

/** Name of an admission policy. */
const char *admissionPolicyName(AdmissionPolicy policy);

/** One pipeline stage: a name, a worker count, a worker factory. */
struct StageSpec {
    StageSpec() = default;

    /** Per-frame stage (the common case). */
    StageSpec(
        std::string stage_name, std::size_t worker_count,
        std::function<std::function<void(StreamFrame &)>(std::size_t)>
            make_worker)
        : name(std::move(stage_name)), workers(worker_count),
          makeWorker(std::move(make_worker))
    {
    }

    std::string name;
    std::size_t workers = 1;

    /**
     * Called once per worker (with the worker's index) before any
     * frame is served; returns the per-frame function that worker
     * runs. Worker-local state (network replicas, scratch) lives in
     * the returned closure. The function must derive any randomness
     * from the frame index so replicas agree (see the determinism
     * contract above). Exactly one of makeWorker / makeBatchWorker
     * must be set.
     */
    std::function<std::function<void(StreamFrame &)>(std::size_t)>
        makeWorker;

    /**
     * Dynamic-batching worker factory (exclusive with makeWorker):
     * returns a function that serves a whole coalesced batch in one
     * call (1..maxBatch frames, pipeline order). Frame content must
     * still be a pure function of each frame's index — in particular
     * independent of which frames happened to share a batch — so the
     * determinism contract survives timing-dependent coalescing.
     */
    std::function<
        std::function<void(std::vector<StreamFrame> &)>(std::size_t)>
        makeBatchWorker;

    /**
     * Largest number of queued frames one batch invocation may
     * coalesce. Only meaningful with makeBatchWorker (a batch worker
     * with maxBatch == 1 degenerates to per-frame serving).
     */
    std::size_t maxBatch = 1;

    /**
     * Latency budget of a partial batch: after popping the first
     * frame, the worker drains whatever is already queued and then
     * waits at most this long for more before serving what it has.
     * 0 = never wait (batch only what is already queued).
     */
    double maxBatchWaitS = 0.0;
};

/** Runner knobs. */
struct RunnerConfig {
    std::uint64_t frames = 0;      ///< frames to offer (> 0)
    std::size_t queueCapacity = 8; ///< bound of every queue
    AdmissionPolicy policy = AdmissionPolicy::Block;
    ArrivalSchedule arrivals = ArrivalSchedule::unpaced();

    /**
     * Per-frame stage deadline in seconds; 0 disables the watchdog.
     * A frame a stage holds longer than this is declared failed
     * (StreamReport::framesFailed) and dropped when the stage
     * function eventually returns; the other workers keep serving,
     * so one wedged frame can never deadlock the pipeline.
     */
    double stageTimeoutS = 0.0;

    /**
     * Completion tap: invoked once per *completed* frame (after the
     * last stage, before the frame is recycled; dropped and failed
     * frames never reach it). Runs on whichever worker finished the
     * frame, possibly several at once — the tap must be thread-safe
     * and, to preserve the steady-state allocation guarantee, must
     * not allocate (tune::FeedbackWindow::add qualifies). Empty
     * disables the tap with zero cost on the frame path.
     */
    std::function<void(const StreamFrame &)> feedbackTap;
};

/** Drives a FrameSource through pipeline stages. */
class StreamRunner
{
  public:
    /**
     * @param source Frame producer; outlives the runner.
     * @param stages Pipeline stages, in order (at least one).
     */
    StreamRunner(FrameSource &source, std::vector<StageSpec> stages,
                 RunnerConfig config);

    /**
     * Execute the run to completion (blocking) and report. May be
     * called once per runner. A stage exception aborts the run and
     * is rethrown here.
     */
    StreamReport run();

    /**
     * Like run(), but reports failure as a Status instead of
     * throwing: FailedPrecondition when the runner already ran,
     * Internal carrying the first stage exception's message.
     */
    StatusOr<StreamReport> tryRun();

    /**
     * Ask a running pipeline to stop admitting new frames and drain.
     * Safe from any thread; returns immediately.
     */
    void requestStop() { stop_.store(true); }

    /** True once requestStop() was called. */
    bool stopRequested() const { return stop_.load(); }

  private:
    using Clock = std::chrono::steady_clock;
    using Queue = BoundedQueue<StreamFrame>;

    /**
     * Watchdog hand-off slot, one per stage worker. The worker
     * publishes the frame it is serving; the watchdog thread claims
     * frames that exceed the stage deadline. Exactly one side wins
     * `claimed` per frame: if the watchdog wins it records the
     * failure and the worker drops the frame on return; if the
     * worker wins the frame proceeds normally.
     */
    struct WorkerSlot {
        std::size_t stage = 0; ///< owning stage (set once at setup)
        std::atomic<std::uint64_t> frame{0};
        std::atomic<std::int64_t> startNs{0};
        std::atomic<bool> active{false};
        std::atomic<bool> claimed{false};
    };

    void sourceLoop(StreamMetrics &metrics);
    void stageLoop(std::size_t stage, std::size_t worker,
                   WorkerSlot *slot, StreamMetrics &metrics);
    void stageBatchLoop(std::size_t stage, std::size_t worker,
                        WorkerSlot *slot, StreamMetrics &metrics);
    void watchdogLoop(StreamMetrics &metrics);

    /**
     * Return a retired frame's buffers to the recycling pool. Every
     * frame that leaves the pipeline — completed, failed, watchdog-
     * killed or evicted — lands here; the source pops recycled frames
     * and refills them in place (FrameSource::fill), so after warm-up
     * the frame path performs no heap allocation. Best-effort: a full
     * pool simply lets the frame's storage die.
     */
    void recycleFrame(StreamFrame &&frame);

    StreamReport runImpl();

    /** Close every queue so all workers unwind promptly. */
    void abortRun();

    void markWorkerReady();
    void waitWorkersReady(std::size_t count);

    double secondsSinceStart() const;

    FrameSource &source_;
    std::vector<StageSpec> stages_;
    RunnerConfig config_;

    std::vector<std::unique_ptr<Queue>> queues_;
    std::unique_ptr<Queue> pool_; ///< retired frames for reuse
    std::vector<std::unique_ptr<std::atomic<std::size_t>>> live_;
    std::vector<std::unique_ptr<WorkerSlot>> slots_;
    std::atomic<bool> stop_{false};
    std::atomic<bool> watchdogStop_{false};
    bool started_ = false;

    std::mutex readyMutex_;
    std::condition_variable readyCv_;
    std::size_t readyCount_ = 0;

    std::mutex errorMutex_;
    std::exception_ptr firstError_;

    Clock::time_point start_;
};

} // namespace stream
} // namespace redeye

#endif // REDEYE_STREAM_RUNNER_HH
