/**
 * @file
 * Metrics collection for the streaming runtime.
 *
 * StreamMetrics is the single thread-safe sink every pipeline worker
 * reports into: per-stage service times, queue depths, admission
 * drops and frame completions. At the end of a run it is folded into
 * a StreamReport — sustained fps, p50/p95/p99 latency, per-stage
 * breakdowns, energy per frame, and the per-frame-index prediction
 * vector used to verify the determinism contract.
 */

#ifndef REDEYE_STREAM_METRICS_HH
#define REDEYE_STREAM_METRICS_HH

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "core/stats.hh"
#include "core/status.hh"
#include "stream/frame.hh"

namespace redeye {
namespace stream {

/** Identity of one pipeline stage, for reporting. */
struct StageInfo {
    std::string name;
    std::size_t workers = 1;
};

/** Per-stage slice of a StreamReport. */
struct StageReport {
    std::string name;
    std::size_t workers = 0;
    std::uint64_t processed = 0;
    std::uint64_t failed = 0; ///< frames this stage dropped (failure
                              ///< surrender or watchdog kill)

    /**
     * Failure attribution by cause: `failed` split into deadline
     * overruns (watchdog kills, DeadlineExceeded surrenders) and
     * everything else. failedByTimeout + failedByError == failed.
     */
    std::uint64_t failedByTimeout = 0;
    std::uint64_t failedByError = 0;
    double serviceMeanS = 0.0;
    double serviceP50S = 0.0;
    double serviceP95S = 0.0;
    double serviceP99S = 0.0;
    double serviceMaxS = 0.0;
    double queueDepthMean = 0.0;
    std::size_t queueDepthMax = 0;

    /**
     * Dynamic-batching stats: number of coalesced batch invocations
     * and the frames-per-batch distribution. All zero for per-frame
     * stages. For a batched stage `processed` still counts frames
     * (not batches) and the service percentiles are per *batch*.
     */
    std::uint64_t batches = 0;
    double batchMean = 0.0;
    std::size_t batchMax = 0;
};

/** Result of one streaming run. */
struct StreamReport {
    std::uint64_t framesOffered = 0;
    std::uint64_t framesAdmitted = 0;
    std::uint64_t framesDropped = 0; ///< admission + eviction drops
    std::uint64_t framesFailed = 0;  ///< stage failures + watchdog kills
    std::uint64_t framesCompleted = 0;

    double wallS = 0.0;        ///< first emission to last completion
    double offeredFps = 0.0;   ///< framesOffered / wallS
    double sustainedFps = 0.0; ///< framesCompleted / wallS

    double latencyMeanS = 0.0; ///< emission -> completion
    double latencyP50S = 0.0;
    double latencyP95S = 0.0;
    double latencyP99S = 0.0;
    double latencyMaxS = 0.0;

    double analogEnergyMeanJ = 0.0; ///< realized RedEye J/frame
    double systemEnergyMeanJ = 0.0; ///< analog + host-model J/frame

    std::vector<StageReport> stages;

    /**
     * Host prediction per frame index; -1 for frames that were
     * dropped (or never offered). Bit-identical across thread counts
     * and drop policies for every completed index.
     */
    std::vector<std::int32_t> predictions;

    /** Human-readable summary tables. */
    void print(std::ostream &os) const;
};

/** Thread-safe run-wide metrics sink. */
class StreamMetrics
{
  public:
    /**
     * @param stages Stage identities, in pipeline order.
     * @param expected_frames Upper bound on frame indices (sizes the
     * prediction vector).
     */
    StreamMetrics(std::vector<StageInfo> stages,
                  std::uint64_t expected_frames);

    /** A frame left the source (pre-admission). */
    void recordOffered();

    /** A frame entered the admission queue. */
    void recordAdmitted();

    /** Frame @p index was dropped (rejected or evicted). */
    void recordDropped(std::uint64_t index);

    /**
     * Frame @p index failed in stage @p stage (the stage surrendered
     * it or the watchdog declared it dead) and leaves the pipeline.
     * Counted both run-wide (StreamReport::framesFailed) and against
     * the stage (StageReport::failed), so serving sweeps can tell
     * which stage is shedding frames. @p code attributes the cause:
     * DeadlineExceeded counts as failedByTimeout, every other code as
     * failedByError (the two-arg overload defaults to Internal).
     */
    void recordFailed(std::uint64_t index, std::size_t stage,
                      StatusCode code);
    void
    recordFailed(std::uint64_t index, std::size_t stage)
    {
        recordFailed(index, stage, StatusCode::Internal);
    }

    /** Stage @p stage served one frame in @p seconds. */
    void recordService(std::size_t stage, double seconds);

    /**
     * Stage @p stage coalesced @p frames queued frames into one batch
     * invocation (dynamic batching). Pairs with one recordService()
     * call for the batch's wall time; the frame count recorded here
     * is what keeps StageReport::processed counting frames.
     */
    void recordBatch(std::size_t stage, std::size_t frames);

    /** Depth of stage @p stage's inbound queue after a pop. */
    void recordQueueDepth(std::size_t stage, std::size_t depth);

    /** Frame @p frame finished the last stage at time @p now_s. */
    void recordCompleted(const StreamFrame &frame, double now_s);

    /** Fold everything into a report. @p wall_s is the run's span. */
    StreamReport report(double wall_s) const;

  private:
    struct StageAccum {
        std::vector<double> serviceS;
        RunningStat depth;
        std::size_t depthMax = 0;
        std::uint64_t failed = 0;
        std::uint64_t failedByTimeout = 0;
        std::uint64_t failedByError = 0;
        RunningStat batch;
        std::size_t batchMax = 0;
        std::uint64_t batchFrames = 0;
    };

    mutable std::mutex mutex_;
    std::vector<StageInfo> stages_;
    std::vector<StageAccum> accum_;
    std::uint64_t offered_ = 0;
    std::uint64_t admitted_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t completed_ = 0;
    std::vector<double> latencyS_;
    RunningStat analogJ_;
    RunningStat systemJ_;
    std::vector<std::int32_t> predictions_;
};

} // namespace stream
} // namespace redeye

#endif // REDEYE_STREAM_METRICS_HH
