/**
 * @file
 * Frame sources and arrival processes for the streaming runtime.
 *
 * A FrameSource maps a frame index to frame content; an
 * ArrivalSchedule maps a frame index to the gap separating it from
 * its predecessor. Both are pure functions of the index (arrival
 * gaps come from counter-based RNG streams, core/rng.hh), so a run's
 * offered load and frame content are reproducible bit-for-bit no
 * matter how the pipeline behind the source is threaded.
 */

#ifndef REDEYE_STREAM_FRAME_SOURCE_HH
#define REDEYE_STREAM_FRAME_SOURCE_HH

#include <cstdint>

#include "data/shapes_dataset.hh"
#include "stream/frame.hh"

namespace redeye {
namespace stream {

/** Produces frame content by index. */
class FrameSource
{
  public:
    virtual ~FrameSource() = default;

    /**
     * Materialize frame @p index. Implementations must return
     * identical content for identical indices (no hidden state), so
     * the runtime can offer the same workload across configurations.
     */
    virtual StreamFrame frame(std::uint64_t index) = 0;

    /**
     * Materialize frame @p index into @p frame, overwriting every
     * field and reusing the tensors' storage when capacities suffice.
     * This is the flavour the runner calls: together with its frame
     * recycling pool it keeps the source allocation-free in steady
     * state. The default forwards to frame() (correct, allocates).
     */
    virtual void
    fill(std::uint64_t index, StreamFrame &frame)
    {
        frame = this->frame(index);
    }
};

/**
 * Replays a pre-generated shapes dataset in a loop: frame i is
 * example (i mod N). The dataset is generated once up front, so the
 * per-frame cost is one image copy — the source never becomes the
 * bottleneck being measured.
 */
class ShapesReplaySource : public FrameSource
{
  public:
    /** @param dataset Examples to cycle through (must be non-empty). */
    explicit ShapesReplaySource(data::Dataset dataset);

    StreamFrame frame(std::uint64_t index) override;

    /** In-place replay: copies the example into recycled storage. */
    void fill(std::uint64_t index, StreamFrame &frame) override;

    /** Examples in the replay loop. */
    std::size_t size() const { return dataset_.size(); }

  private:
    data::Dataset dataset_;
};

/** Shape of the inter-arrival process. */
enum class ArrivalKind {
    Unpaced, ///< frames offered back-to-back (closed-loop load)
    Fixed,   ///< deterministic 1/rate gaps
    Poisson, ///< exponential gaps (open-loop Poisson arrivals)
};

/** Name of an arrival kind. */
const char *arrivalKindName(ArrivalKind kind);

/**
 * Deterministic arrival schedule: interarrivalS(i) is the gap between
 * frame i-1 and frame i, derived for Poisson arrivals from a
 * counter-based stream keyed by the frame index.
 */
struct ArrivalSchedule {
    ArrivalKind kind = ArrivalKind::Unpaced;
    double rateHz = 0.0;        ///< mean arrival rate (Fixed/Poisson)
    std::uint64_t seed = 0xa221;

    /** Gap before frame @p index, in seconds. */
    double interarrivalS(std::uint64_t index) const;

    /** Unpaced (as-fast-as-possible) schedule. */
    static ArrivalSchedule unpaced();

    /** Fixed-rate schedule at @p rate_hz frames per second. */
    static ArrivalSchedule fixed(double rate_hz);

    /** Poisson schedule with mean rate @p rate_hz. */
    static ArrivalSchedule poisson(double rate_hz,
                                   std::uint64_t seed = 0xa221);
};

} // namespace stream
} // namespace redeye

#endif // REDEYE_STREAM_FRAME_SOURCE_HH
