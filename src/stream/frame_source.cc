#include "stream/frame_source.hh"

#include <cmath>

#include "core/logging.hh"
#include "core/rng.hh"

namespace redeye {
namespace stream {

ShapesReplaySource::ShapesReplaySource(data::Dataset dataset)
    : dataset_(std::move(dataset))
{
    fatal_if(dataset_.size() == 0,
             "replay source needs a non-empty dataset");
}

StreamFrame
ShapesReplaySource::frame(std::uint64_t index)
{
    StreamFrame f;
    fill(index, f);
    return f;
}

void
ShapesReplaySource::fill(std::uint64_t index, StreamFrame &frame)
{
    const std::size_t slot =
        static_cast<std::size_t>(index % dataset_.size());
    frame.index = index;
    dataset_.images.sliceInto(slot, frame.image);
    frame.label = dataset_.labels[slot];
    frame.emitS = 0.0;
    frame.predicted = -1;
    frame.analogEnergyJ = 0.0;
    frame.systemEnergyJ = 0.0;
    frame.failed = false;
    frame.analogBypassed = false;
    frame.failCode = StatusCode::Ok;
    // frame.features keeps its (stale) storage: downstream stages
    // overwrite the content and reuse the capacity.
}

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Unpaced:
        return "unpaced";
      case ArrivalKind::Fixed:
        return "fixed";
      case ArrivalKind::Poisson:
        return "poisson";
    }
    return "?";
}

double
ArrivalSchedule::interarrivalS(std::uint64_t index) const
{
    switch (kind) {
      case ArrivalKind::Unpaced:
        return 0.0;
      case ArrivalKind::Fixed:
        return rateHz > 0.0 ? 1.0 / rateHz : 0.0;
      case ArrivalKind::Poisson: {
        if (rateHz <= 0.0)
            return 0.0;
        // Exponential gap from the frame's private stream: the
        // schedule is a pure function of (seed, index).
        Rng gap = streamRng(seed, 0, index);
        const double u = gap.uniform();
        return -std::log1p(-u) / rateHz;
      }
    }
    return 0.0;
}

ArrivalSchedule
ArrivalSchedule::unpaced()
{
    return ArrivalSchedule{ArrivalKind::Unpaced, 0.0, 0};
}

ArrivalSchedule
ArrivalSchedule::fixed(double rate_hz)
{
    fatal_if(rate_hz <= 0.0, "fixed arrival rate must be positive");
    return ArrivalSchedule{ArrivalKind::Fixed, rate_hz, 0};
}

ArrivalSchedule
ArrivalSchedule::poisson(double rate_hz, std::uint64_t seed)
{
    fatal_if(rate_hz <= 0.0, "Poisson arrival rate must be positive");
    return ArrivalSchedule{ArrivalKind::Poisson, rate_hz, seed};
}

} // namespace stream
} // namespace redeye
