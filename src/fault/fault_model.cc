#include "fault/fault_model.hh"

#include <sstream>

#include "core/logging.hh"
#include "core/rng.hh"

namespace redeye {
namespace fault {

namespace {

/**
 * Independent stream for one (kind, column) cell of the campaign.
 * The kind is folded into the pass counter of streamRng, so adding a
 * new fault kind never perturbs the realization of existing ones.
 */
Rng
faultStream(const FaultCampaign &c, FaultKind kind, std::size_t column)
{
    return streamRng(c.seed, static_cast<std::uint64_t>(kind) + 1,
                     static_cast<std::uint64_t>(column));
}

void
checkRate(double rate, const char *name)
{
    fatal_if(rate < 0.0 || rate > 1.0, "fault rate '", name,
             "' must be in [0, 1], got ", rate);
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::StuckWeightBit:
        return "stuck-weight-bit";
      case FaultKind::DeadColumn:
        return "dead-column";
      case FaultKind::ColumnOffset:
        return "column-offset";
      case FaultKind::MemoryLeak:
        return "memory-leak";
      case FaultKind::ComparatorOffset:
        return "comparator-offset";
      case FaultKind::AdcStuckBit:
        return "adc-stuck-bit";
    }
    return "?";
}

bool
FaultCampaign::any() const
{
    return stuckWeightBitRate > 0.0 || deadColumnRate > 0.0 ||
           offsetColumnRate > 0.0 || memoryLeakRate > 0.0 ||
           comparatorOffsetRate > 0.0 || adcStuckBitRate > 0.0;
}

FaultCampaign
FaultCampaign::deadColumns(double rate, std::uint64_t seed)
{
    FaultCampaign c;
    c.seed = seed;
    c.deadColumnRate = rate;
    return c;
}

bool
ColumnFaults::any() const
{
    return dead || offsetV != 0.0 || weightStuckBit >= 0 ||
           extraHoldS > 0.0 || comparatorOffsetV != 0.0 ||
           adcStuckBit >= 0;
}

FaultModel::FaultModel(FaultCampaign campaign, std::size_t columns)
    : campaign_(campaign), cols_(columns)
{
    fatal_if(columns == 0, "fault model needs at least one column");
    checkRate(campaign_.stuckWeightBitRate, "stuckWeightBitRate");
    checkRate(campaign_.deadColumnRate, "deadColumnRate");
    checkRate(campaign_.offsetColumnRate, "offsetColumnRate");
    checkRate(campaign_.memoryLeakRate, "memoryLeakRate");
    checkRate(campaign_.comparatorOffsetRate, "comparatorOffsetRate");
    checkRate(campaign_.adcStuckBitRate, "adcStuckBitRate");
    fatal_if(campaign_.leakHoldS < 0.0, "leak hold time must be >= 0");

    for (std::size_t c = 0; c < columns; ++c) {
        ColumnFaults &f = cols_[c];

        {
            Rng r = faultStream(campaign_, FaultKind::DeadColumn, c);
            f.dead = r.bernoulli(campaign_.deadColumnRate);
        }
        {
            Rng r = faultStream(campaign_, FaultKind::ColumnOffset, c);
            if (r.bernoulli(campaign_.offsetColumnRate)) {
                // Signed offset of the configured magnitude.
                f.offsetV = r.bernoulli(0.5)
                                ? campaign_.columnOffsetV
                                : -campaign_.columnOffsetV;
            }
        }
        {
            Rng r = faultStream(campaign_, FaultKind::StuckWeightBit,
                                c);
            if (r.bernoulli(campaign_.stuckWeightBitRate)) {
                // 8-bit weight DAC: any magnitude bit may stick.
                f.weightStuckBit =
                    static_cast<int>(r.uniformInt(0, 7));
                f.weightStuckHigh = r.bernoulli(0.5);
            }
        }
        {
            Rng r = faultStream(campaign_, FaultKind::MemoryLeak, c);
            if (r.bernoulli(campaign_.memoryLeakRate)) {
                // Leak severity varies across cells: [0.5x, 1.5x] of
                // the campaign's nominal hold time.
                f.extraHoldS =
                    campaign_.leakHoldS * r.uniform(0.5, 1.5);
            }
        }
        {
            Rng r = faultStream(campaign_,
                                FaultKind::ComparatorOffset, c);
            if (r.bernoulli(campaign_.comparatorOffsetRate)) {
                f.comparatorOffsetV =
                    r.bernoulli(0.5) ? campaign_.comparatorOffsetV
                                     : -campaign_.comparatorOffsetV;
            }
        }
        {
            Rng r = faultStream(campaign_, FaultKind::AdcStuckBit, c);
            if (r.bernoulli(campaign_.adcStuckBitRate)) {
                // The 10-bit SAR's upper bits are the damaging ones;
                // draw over the full physical resolution.
                f.adcStuckBit = static_cast<int>(r.uniformInt(0, 9));
                f.adcStuckHigh = r.bernoulli(0.5);
            }
        }

        if (f.any() && campaign_.onsetHorizon > 0) {
            Rng r = streamRng(campaign_.seed ^ 0x05e7ULL, 0, c);
            f.onset = static_cast<std::uint64_t>(r.uniformInt(
                0,
                static_cast<std::int64_t>(campaign_.onsetHorizon)));
        }
    }
}

const ColumnFaults &
FaultModel::column(std::size_t column) const
{
    panic_if(column >= cols_.size(), "fault query for column ",
             column, " of ", cols_.size());
    return cols_[column];
}

std::size_t
FaultModel::deadColumnCount(std::uint64_t frame) const
{
    std::size_t n = 0;
    for (const auto &f : cols_)
        n += f.dead && f.activeAt(frame);
    return n;
}

std::size_t
FaultModel::faultyColumnCount(std::uint64_t frame) const
{
    std::size_t n = 0;
    for (const auto &f : cols_)
        n += f.activeAt(frame);
    return n;
}

std::string
FaultModel::str() const
{
    std::ostringstream oss;
    oss << "fault campaign seed 0x" << std::hex << campaign_.seed
        << std::dec << ", " << cols_.size() << " columns, "
        << faultyColumnCount() << " faulty (" << deadColumnCount()
        << " dead)\n";
    for (std::size_t c = 0; c < cols_.size(); ++c) {
        const ColumnFaults &f = cols_[c];
        if (!f.any())
            continue;
        oss << "  col " << c << " @frame " << f.onset << ":";
        if (f.dead)
            oss << " dead";
        if (f.offsetV != 0.0)
            oss << " offset=" << f.offsetV << "V";
        if (f.weightStuckBit >= 0) {
            oss << " weight-bit" << f.weightStuckBit << "="
                << (f.weightStuckHigh ? 1 : 0);
        }
        if (f.extraHoldS > 0.0)
            oss << " leak=" << f.extraHoldS << "s";
        if (f.comparatorOffsetV != 0.0)
            oss << " cmp-offset=" << f.comparatorOffsetV << "V";
        if (f.adcStuckBit >= 0) {
            oss << " adc-bit" << f.adcStuckBit << "="
                << (f.adcStuckHigh ? 1 : 0);
        }
        oss << "\n";
    }
    return oss.str();
}

} // namespace fault
} // namespace redeye
