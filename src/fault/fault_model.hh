/**
 * @file
 * Deterministic analog fault campaigns.
 *
 * The paper models well-behaved Gaussian and quantization noise but
 * assumes every column circuit works forever. Real analog arrays
 * drift and die: capacitor bits stick, op amps rail, storage cells
 * leak, comparators acquire offsets, ADC bits freeze. A FaultModel
 * realizes one such campaign — which columns are afflicted, by what,
 * and from which frame onward — as a pure function of a seed, so a
 * campaign is reproducible bit-for-bit across runs, worker counts
 * and machines.
 *
 * The model is execution-agnostic: it only answers queries ("what is
 * wrong with column c at frame f?"). The functional column array
 * (redeye/column.hh) consults it through a narrow hook
 * (ColumnArray::armFaults); with no model armed the execution path
 * is untouched and bit-identical to pristine silicon.
 */

#ifndef REDEYE_FAULT_FAULT_MODEL_HH
#define REDEYE_FAULT_FAULT_MODEL_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace redeye {
namespace fault {

/** Kinds of injected analog hardware faults. */
enum class FaultKind {
    StuckWeightBit,   ///< stuck capacitor bit in the MAC weight bank
    DeadColumn,       ///< column rails (op amp stuck at full swing)
    ColumnOffset,     ///< systematic voltage offset on the MAC output
    MemoryLeak,       ///< storage cell droops as if held for extra time
    ComparatorOffset, ///< input-referred offset in the max-pool latch
    AdcStuckBit,      ///< SAR ADC output bit frozen at 0 or 1
};

/** Human-readable fault kind name. */
const char *faultKindName(FaultKind kind);

/**
 * One fault campaign: per-column incidence rates and severities,
 * plus the seed the realization is drawn from. All rates are
 * probabilities in [0, 1] applied independently per column.
 */
struct FaultCampaign {
    std::uint64_t seed = 0xfa017;

    /**
     * Faults onset at a frame index drawn uniformly in
     * [0, onsetHorizon]; 0 means every fault is present from birth.
     * Lets wear-out appear *during* a streaming run so the periodic
     * calibration probe has something to detect.
     */
    std::uint64_t onsetHorizon = 0;

    double stuckWeightBitRate = 0.0; ///< stuck MAC capacitor bit
    double deadColumnRate = 0.0;     ///< column railed at full swing
    double offsetColumnRate = 0.0;   ///< MAC output offset
    double columnOffsetV = 0.05;     ///< offset magnitude [V]
    double memoryLeakRate = 0.0;     ///< leaky storage cell
    double leakHoldS = 10.0;         ///< effective extra hold time [s]
    double comparatorOffsetRate = 0.0;
    double comparatorOffsetV = 0.05; ///< latch offset magnitude [V]
    double adcStuckBitRate = 0.0;    ///< frozen ADC output bit

    /** True if any rate is non-zero. */
    bool any() const;

    /** A campaign of only dead columns at @p rate. */
    static FaultCampaign deadColumns(double rate,
                                     std::uint64_t seed = 0xfa017);
};

/** Realized fault state of one column. */
struct ColumnFaults {
    /** First frame index at which this column's faults apply. */
    std::uint64_t onset = 0;

    bool dead = false;          ///< output railed at full swing
    double offsetV = 0.0;       ///< MAC output offset [V]
    int weightStuckBit = -1;    ///< magnitude bit index; -1 = none
    bool weightStuckHigh = false;
    double extraHoldS = 0.0;    ///< buffer leak as extra hold time
    double comparatorOffsetV = 0.0;
    int adcStuckBit = -1;       ///< output code bit index; -1 = none
    bool adcStuckHigh = false;

    /** True if any fault is realized (regardless of onset). */
    bool any() const;

    /** True if any fault is active at frame @p frame. */
    bool
    activeAt(std::uint64_t frame) const
    {
        return any() && frame >= onset;
    }
};

/**
 * A realized campaign over a fixed-width column array. Construction
 * draws every fault from counter-based streams keyed by
 * (seed, kind, column), so the realization depends only on the
 * campaign and the column count — never on query order.
 */
class FaultModel
{
  public:
    FaultModel(FaultCampaign campaign, std::size_t columns);

    const FaultCampaign &campaign() const { return campaign_; }

    std::size_t columns() const { return cols_.size(); }

    /** Realized faults of @p column (must be < columns()). */
    const ColumnFaults &column(std::size_t column) const;

    /** Columns with a dead fault active at @p frame. */
    std::size_t deadColumnCount(
        std::uint64_t frame =
            std::numeric_limits<std::uint64_t>::max()) const;

    /** Columns with any fault active at @p frame. */
    std::size_t faultyColumnCount(
        std::uint64_t frame =
            std::numeric_limits<std::uint64_t>::max()) const;

    /** Multi-line listing of every realized fault. */
    std::string str() const;

  private:
    FaultCampaign campaign_;
    std::vector<ColumnFaults> cols_;
};

} // namespace fault
} // namespace redeye

#endif // REDEYE_FAULT_FAULT_MODEL_HH
