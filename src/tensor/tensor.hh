/**
 * @file
 * Dense float tensor in NCHW layout.
 *
 * The Tensor is the currency of the ConvNet framework (src/nn) and the
 * noise/analog simulation layers. Storage is a contiguous
 * std::vector<float>; the class is freely copyable and movable.
 */

#ifndef REDEYE_TENSOR_TENSOR_HH
#define REDEYE_TENSOR_TENSOR_HH

#include <vector>

#include "tensor/shape.hh"

namespace redeye {

class Rng;

/** Dense 4-D float tensor. */
class Tensor
{
  public:
    /** Empty tensor (size 0). */
    Tensor() = default;

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(const Shape &shape);

    /** Tensor of the given shape filled with a constant. */
    Tensor(const Shape &shape, float fill_value);

    /** Tensor wrapping explicit data (size must match the shape). */
    Tensor(const Shape &shape, std::vector<float> data);

    const Shape &shape() const { return shape_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    std::vector<float> &vec() { return data_; }
    const std::vector<float> &vec() const { return data_; }

    /** Unchecked linear access. */
    float &operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /** Unchecked NCHW access. */
    float &
    at(std::size_t n, std::size_t c, std::size_t h, std::size_t w)
    {
        return data_[shape_.index(n, c, h, w)];
    }

    float
    at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const
    {
        return data_[shape_.index(n, c, h, w)];
    }

    /** Bounds-checked NCHW access (panics on violation). */
    float &checkedAt(std::size_t n, std::size_t c, std::size_t h,
                     std::size_t w);

    /** Set every element to a constant. */
    void fill(float value);

    /** Set every element to zero. */
    void zero() { fill(0.0f); }

    /** Fill i.i.d. uniform in [lo, hi). */
    void fillUniform(Rng &rng, float lo, float hi);

    /** Fill i.i.d. Gaussian. */
    void fillGaussian(Rng &rng, float mean, float stddev);

    /**
     * Reinterpret as a different shape with the same element count
     * (panics on mismatch).
     */
    Tensor reshaped(const Shape &shape) const;

    /** Copy out one batch item as an n == 1 tensor. */
    Tensor slice(std::size_t batch_index) const;

    /**
     * Copy one batch item into @p out, reusing its storage when the
     * capacity suffices. The in-place flavour of slice() for serving
     * paths that recycle tensors instead of reallocating per frame.
     */
    void sliceInto(std::size_t batch_index, Tensor &out) const;

    /** Sum of all elements. */
    double sum() const;

    /** Mean of all elements (0 when empty). */
    double mean() const;

    /** Largest absolute element (0 when empty). */
    float absMax() const;

    /** Elementwise in-place scale. */
    void scale(float factor);

    /** Elementwise in-place add of another tensor (shapes must match). */
    void add(const Tensor &other);

    /** Elementwise in-place axpy: this += alpha * other. */
    void axpy(float alpha, const Tensor &other);

    /** Elementwise in-place clamp into [lo, hi]. */
    void clamp(float lo, float hi);

  private:
    Shape shape_;
    std::vector<float> data_;
};

/** Largest absolute difference between two equal-shaped tensors. */
float maxAbsDiff(const Tensor &a, const Tensor &b);

} // namespace redeye

#endif // REDEYE_TENSOR_TENSOR_HH
