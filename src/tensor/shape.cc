#include "tensor/shape.hh"

#include <cstdio>

namespace redeye {

std::string
Shape::str() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%zux%zux%zux%zu", n, c, h, w);
    return buf;
}

} // namespace redeye
