/**
 * @file
 * Tensor shape in NCHW layout.
 *
 * All activations in the framework are 4-D (batch, channels, height,
 * width); fully-connected activations use h == w == 1. Convolution
 * kernels reuse the same type as (out_channels, in_channels, kh, kw).
 */

#ifndef REDEYE_TENSOR_SHAPE_HH
#define REDEYE_TENSOR_SHAPE_HH

#include <cstddef>
#include <string>

namespace redeye {

/** 4-D NCHW shape. */
struct Shape {
    std::size_t n = 0; ///< batch (or kernel output channels)
    std::size_t c = 0; ///< channels
    std::size_t h = 0; ///< height
    std::size_t w = 0; ///< width

    Shape() = default;

    Shape(std::size_t n_, std::size_t c_, std::size_t h_, std::size_t w_)
        : n(n_), c(c_), h(h_), w(w_)
    {}

    /** Total number of elements. */
    std::size_t size() const { return n * c * h * w; }

    /** Elements per batch item. */
    std::size_t sliceSize() const { return c * h * w; }

    /** Elements per channel plane. */
    std::size_t planeSize() const { return h * w; }

    /** Linear index of (in, ic, ih, iw); no bounds checking. */
    std::size_t
    index(std::size_t in, std::size_t ic, std::size_t ih,
          std::size_t iw) const
    {
        return ((in * c + ic) * h + ih) * w + iw;
    }

    /** True if every extent is nonzero. */
    bool valid() const { return n && c && h && w; }

    bool operator==(const Shape &o) const = default;

    /** Render as "NxCxHxW". */
    std::string str() const;
};

} // namespace redeye

#endif // REDEYE_TENSOR_SHAPE_HH
