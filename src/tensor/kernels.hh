/**
 * @file
 * GEMM kernel layer: pluggable matrix-product backends behind one
 * shape-checked API.
 *
 * Every forward and backward pass in the framework bottoms out in a
 * handful of row-major matrix products (conv via im2col, inner
 * product, and their gradients). This layer provides those products
 * with two interchangeable backends:
 *
 *  - `reference`: the original unblocked scalar loops, kept verbatim
 *    as the always-available golden model. With
 *    `RedeyeKernelBackend=reference` the framework's forward pass is
 *    bit-identical to the historical (pre-kernel-layer) outputs.
 *  - `blocked`: cache-blocked, register-tiled GEMM with packed A/B
 *    panels and an MR x NR microkernel, vectorized with AVX2/FMA
 *    intrinsics when the build enables them (`__AVX2__`/`__FMA__`)
 *    and with portable autovectorizable loops otherwise.
 *
 * Backend selection is process-wide: the `RedeyeKernelBackend`
 * environment variable pins a run to `reference` or `blocked`
 * (default `blocked`), and setBackend() overrides it
 * programmatically (tests). Both backends are bit-identical across
 * thread counts for a fixed shape. The blocked backend can execute a
 * single product *in parallel* when handed an ExecContext: the column
 * dimension is partitioned into NR-sliver ranges and each worker runs
 * the full blocked loop nest over its range, packing into panels
 * carved from its Workspace lane arena. Because every C element is
 * one fmadd chain over k in ascending order within its own SIMD lane,
 * and lane arithmetic never depends on which range a column landed
 * in, any partition of the columns — one worker or sixteen — yields
 * bit-identical C (DESIGN.md §12). Callers that parallelize *around*
 * gemm (per batch chunk, under ExecContext) keep working: a gemm
 * issued from inside a chunk of the context's own pool detects the
 * nesting and runs serially on the caller's lane.
 *
 * ## Shape discipline
 *
 * The transposed variants take the *stored* extents of each operand
 * as a named MatShape, and derive (and validate) the m/k/n of the
 * product from them. The historical free functions
 * (matmul/matmulTransA/matmulTransB in tensor/im2col.hh) took bare
 * `m, k, n` size_t arguments whose meaning silently changed per
 * variant — an argument-order hazard this API removes: a swapped
 * dimension now fails the shape check instead of corrupting memory
 * or computing a wrong product.
 */

#ifndef REDEYE_TENSOR_KERNELS_HH
#define REDEYE_TENSOR_KERNELS_HH

#include <cstddef>
#include <vector>

#include "tensor/im2col.hh"

namespace redeye {

class ExecContext;

namespace kernels {

/** Available GEMM implementations. */
enum class Backend {
    Reference, ///< unblocked scalar loops (golden model)
    Blocked,   ///< packed-panel, register-tiled, vectorized
};

/**
 * Active backend: the setBackend() override if one is installed,
 * else the value of the `RedeyeKernelBackend` environment variable
 * (`reference` | `blocked`, case-insensitive; unset = blocked).
 * An unrecognized value is a fatal error.
 */
Backend backend();

/** Install a process-wide backend override (tests, tools). */
void setBackend(Backend b);

/** Drop the override, returning to the environment selection. */
void clearBackendOverride();

/** Stable lowercase name of a backend ("reference"/"blocked"). */
const char *backendName(Backend b);

/** Stored extents of a row-major matrix operand. */
struct MatShape {
    std::size_t rows = 0;
    std::size_t cols = 0;
};

/** How an epilogue bias vector broadcasts over C. */
enum class BiasKind {
    None,
    PerRow, ///< bias[i] added to every element of row i
    PerCol, ///< bias[j] added to every element of column j
};

/**
 * Fused epilogue of a gemm call: optional accumulation into the
 * existing contents of C (otherwise C is overwritten) and an
 * optional broadcast bias added after the product completes.
 */
struct Epilogue {
    bool accumulate = false;
    const float *bias = nullptr;
    BiasKind biasKind = BiasKind::None;

    /** C += A*B. */
    static Epilogue
    accumulateInto()
    {
        Epilogue e;
        e.accumulate = true;
        return e;
    }

    /** C = A*B, then C[i][j] += bias[i]. */
    static Epilogue
    biasPerRow(const float *bias)
    {
        Epilogue e;
        e.bias = bias;
        e.biasKind = BiasKind::PerRow;
        return e;
    }

    /** C = A*B, then C[i][j] += bias[j]. */
    static Epilogue
    biasPerCol(const float *bias)
    {
        Epilogue e;
        e.bias = bias;
        e.biasKind = BiasKind::PerCol;
        return e;
    }
};

/**
 * C[m x n] = A[m x k] * B[k x n] (+ epilogue), row-major.
 * Requires as.cols == bs.rows; m = as.rows, k = as.cols, n = bs.cols.
 */
void gemm(const float *a, MatShape as, const float *b, MatShape bs,
          float *c, const Epilogue &ep = {});

/**
 * C[m x n] = A^T * B (+ epilogue), with A stored [k x m].
 * Requires as.rows == bs.rows; m = as.cols, k = as.rows, n = bs.cols.
 */
void gemmTransA(const float *a, MatShape as, const float *b,
                MatShape bs, float *c, const Epilogue &ep = {});

/**
 * C[m x n] = A * B^T (+ epilogue), with B stored [n x k].
 * Requires as.cols == bs.cols; m = as.rows, k = as.cols, n = bs.rows.
 */
void gemmTransB(const float *a, MatShape as, const float *b,
                MatShape bs, float *c, const Epilogue &ep = {});

/**
 * Context-aware flavours: same products, but the blocked backend
 * draws its pack panels from @p ctx's Workspace lane arenas instead
 * of thread-local vectors (so steady-state serving allocates
 * nothing), and parallelizes the column loop over the context's pool
 * when the call is large enough and not already nested inside one of
 * that pool's chunks. @p lane is the caller's ExecContext lane (the
 * chunk index of the enclosing parallelForChunks, 0 at top level);
 * it selects the arena for the serial path. Results are bit-identical
 * to the context-free flavours at any thread count.
 */
void gemm(const float *a, MatShape as, const float *b, MatShape bs,
          float *c, const Epilogue &ep, ExecContext &ctx,
          std::size_t lane);
void gemmTransA(const float *a, MatShape as, const float *b,
                MatShape bs, float *c, const Epilogue &ep,
                ExecContext &ctx, std::size_t lane);
void gemmTransB(const float *a, MatShape as, const float *b,
                MatShape bs, float *c, const Epilogue &ep,
                ExecContext &ctx, std::size_t lane);

/**
 * One product of a batched GEMM: C = A * B with an optional
 * per-problem bias vector overriding the shared Epilogue's.
 */
struct GemmProblem {
    const float *a = nullptr;
    const float *b = nullptr;
    float *c = nullptr;
    const float *bias = nullptr; ///< nullptr = use Epilogue::bias
};

/**
 * Execute @p count same-shape plain (no-transpose) products in one
 * parallel pass over the flattened (problem, column-range) space —
 * the batched-tail primitive: a layer lowers a whole frame batch and
 * issues one gemmBatch instead of per-item gemms. Per-problem bits
 * are identical to a serial per-problem gemm at any thread count and
 * any batch composition. Must be called from outside @p ctx's pool
 * (top level of a layer forward); when nested or serial it runs the
 * problems on lane @p lane.
 */
void gemmBatch(const GemmProblem *problems, std::size_t count,
               MatShape as, MatShape bs, const Epilogue &ep,
               ExecContext &ctx, std::size_t lane = 0);

/**
 * Arena floats one GEMM worker lane needs for its pack panels.
 * Workers that must not allocate mid-serve reserve this per lane up
 * front (Workspace::arena().reserve), making the PR-6 zero
 * steady-state-allocation guarantee hold from the very first frame
 * even with threaded GEMM.
 */
std::size_t gemmPackFloats();

/**
 * im2col lowering dispatched by backend. Both backends produce
 * byte-identical columns (it is pure data movement); the blocked
 * backend uses a bounds-precomputed fast path (memcpy rows for
 * stride-1) instead of the per-element branch of the reference loop.
 */
void im2col(const float *image, std::size_t channels,
            std::size_t height, std::size_t width,
            const WindowParams &wp, std::vector<float> &cols);

/**
 * im2col into a caller-provided buffer of
 * channels*kernelH*kernelW*outH*outW floats (cleared by the call).
 * The hot-path flavour: layers point it at workspace arena spans so
 * steady-state lowering allocates nothing.
 */
void im2col(const float *image, std::size_t channels,
            std::size_t height, std::size_t width,
            const WindowParams &wp, float *cols);

/** col2im scatter (adjoint of im2col); see tensor/im2col.hh. */
void col2im(const std::vector<float> &cols, std::size_t channels,
            std::size_t height, std::size_t width,
            const WindowParams &wp, float *image);

/** col2im from a caller-provided column buffer. */
void col2im(const float *cols, std::size_t channels,
            std::size_t height, std::size_t width,
            const WindowParams &wp, float *image);

} // namespace kernels
} // namespace redeye

#endif // REDEYE_TENSOR_KERNELS_HH
