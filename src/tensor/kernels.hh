/**
 * @file
 * GEMM kernel layer: pluggable matrix-product backends behind one
 * shape-checked API.
 *
 * Every forward and backward pass in the framework bottoms out in a
 * handful of row-major matrix products (conv via im2col, inner
 * product, and their gradients). This layer provides those products
 * with two interchangeable backends:
 *
 *  - `reference`: the original unblocked scalar loops, kept verbatim
 *    as the always-available golden model. With
 *    `RedeyeKernelBackend=reference` the framework's forward pass is
 *    bit-identical to the historical (pre-kernel-layer) outputs.
 *  - `blocked`: cache-blocked, register-tiled GEMM with packed A/B
 *    panels and an MR x NR microkernel, vectorized with AVX2/FMA
 *    intrinsics when the build enables them (`__AVX2__`/`__FMA__`)
 *    and with portable autovectorizable loops otherwise.
 *
 * Backend selection is process-wide: the `RedeyeKernelBackend`
 * environment variable pins a run to `reference` or `blocked`
 * (default `blocked`), and setBackend() overrides it
 * programmatically (tests). Both backends are bit-identical across
 * thread counts for a fixed shape: a gemm call is single-threaded and
 * callers parallelize *around* it (per batch chunk, under
 * ExecContext), so kernel tiling and pool parallelism compose without
 * affecting results.
 *
 * ## Shape discipline
 *
 * The transposed variants take the *stored* extents of each operand
 * as a named MatShape, and derive (and validate) the m/k/n of the
 * product from them. The historical free functions
 * (matmul/matmulTransA/matmulTransB in tensor/im2col.hh) took bare
 * `m, k, n` size_t arguments whose meaning silently changed per
 * variant — an argument-order hazard this API removes: a swapped
 * dimension now fails the shape check instead of corrupting memory
 * or computing a wrong product.
 */

#ifndef REDEYE_TENSOR_KERNELS_HH
#define REDEYE_TENSOR_KERNELS_HH

#include <cstddef>
#include <vector>

#include "tensor/im2col.hh"

namespace redeye {
namespace kernels {

/** Available GEMM implementations. */
enum class Backend {
    Reference, ///< unblocked scalar loops (golden model)
    Blocked,   ///< packed-panel, register-tiled, vectorized
};

/**
 * Active backend: the setBackend() override if one is installed,
 * else the value of the `RedeyeKernelBackend` environment variable
 * (`reference` | `blocked`, case-insensitive; unset = blocked).
 * An unrecognized value is a fatal error.
 */
Backend backend();

/** Install a process-wide backend override (tests, tools). */
void setBackend(Backend b);

/** Drop the override, returning to the environment selection. */
void clearBackendOverride();

/** Stable lowercase name of a backend ("reference"/"blocked"). */
const char *backendName(Backend b);

/** Stored extents of a row-major matrix operand. */
struct MatShape {
    std::size_t rows = 0;
    std::size_t cols = 0;
};

/** How an epilogue bias vector broadcasts over C. */
enum class BiasKind {
    None,
    PerRow, ///< bias[i] added to every element of row i
    PerCol, ///< bias[j] added to every element of column j
};

/**
 * Fused epilogue of a gemm call: optional accumulation into the
 * existing contents of C (otherwise C is overwritten) and an
 * optional broadcast bias added after the product completes.
 */
struct Epilogue {
    bool accumulate = false;
    const float *bias = nullptr;
    BiasKind biasKind = BiasKind::None;

    /** C += A*B. */
    static Epilogue
    accumulateInto()
    {
        Epilogue e;
        e.accumulate = true;
        return e;
    }

    /** C = A*B, then C[i][j] += bias[i]. */
    static Epilogue
    biasPerRow(const float *bias)
    {
        Epilogue e;
        e.bias = bias;
        e.biasKind = BiasKind::PerRow;
        return e;
    }

    /** C = A*B, then C[i][j] += bias[j]. */
    static Epilogue
    biasPerCol(const float *bias)
    {
        Epilogue e;
        e.bias = bias;
        e.biasKind = BiasKind::PerCol;
        return e;
    }
};

/**
 * C[m x n] = A[m x k] * B[k x n] (+ epilogue), row-major.
 * Requires as.cols == bs.rows; m = as.rows, k = as.cols, n = bs.cols.
 */
void gemm(const float *a, MatShape as, const float *b, MatShape bs,
          float *c, const Epilogue &ep = {});

/**
 * C[m x n] = A^T * B (+ epilogue), with A stored [k x m].
 * Requires as.rows == bs.rows; m = as.cols, k = as.rows, n = bs.cols.
 */
void gemmTransA(const float *a, MatShape as, const float *b,
                MatShape bs, float *c, const Epilogue &ep = {});

/**
 * C[m x n] = A * B^T (+ epilogue), with B stored [n x k].
 * Requires as.cols == bs.cols; m = as.rows, k = as.cols, n = bs.rows.
 */
void gemmTransB(const float *a, MatShape as, const float *b,
                MatShape bs, float *c, const Epilogue &ep = {});

/**
 * im2col lowering dispatched by backend. Both backends produce
 * byte-identical columns (it is pure data movement); the blocked
 * backend uses a bounds-precomputed fast path (memcpy rows for
 * stride-1) instead of the per-element branch of the reference loop.
 */
void im2col(const float *image, std::size_t channels,
            std::size_t height, std::size_t width,
            const WindowParams &wp, std::vector<float> &cols);

/**
 * im2col into a caller-provided buffer of
 * channels*kernelH*kernelW*outH*outW floats (cleared by the call).
 * The hot-path flavour: layers point it at workspace arena spans so
 * steady-state lowering allocates nothing.
 */
void im2col(const float *image, std::size_t channels,
            std::size_t height, std::size_t width,
            const WindowParams &wp, float *cols);

/** col2im scatter (adjoint of im2col); see tensor/im2col.hh. */
void col2im(const std::vector<float> &cols, std::size_t channels,
            std::size_t height, std::size_t width,
            const WindowParams &wp, float *image);

/** col2im from a caller-provided column buffer. */
void col2im(const float *cols, std::size_t channels,
            std::size_t height, std::size_t width,
            const WindowParams &wp, float *image);

} // namespace kernels
} // namespace redeye

#endif // REDEYE_TENSOR_KERNELS_HH
