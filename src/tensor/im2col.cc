#include "tensor/im2col.hh"

#include <cstring>

#include "tensor/kernels.hh"

namespace redeye {

void
im2col(const float *image, std::size_t channels, std::size_t height,
       std::size_t width, const WindowParams &wp,
       std::vector<float> &cols)
{
    const std::size_t out_h = wp.outH(height);
    const std::size_t out_w = wp.outW(width);
    const std::size_t rows = channels * wp.kernelH * wp.kernelW;
    cols.resize(rows * out_h * out_w);
    im2col(image, channels, height, width, wp, cols.data());
}

void
im2col(const float *image, std::size_t channels, std::size_t height,
       std::size_t width, const WindowParams &wp, float *cols)
{
    const std::size_t out_h = wp.outH(height);
    const std::size_t out_w = wp.outW(width);
    const std::size_t rows = channels * wp.kernelH * wp.kernelW;
    std::memset(cols, 0, rows * out_h * out_w * sizeof(float));

    std::size_t row = 0;
    for (std::size_t c = 0; c < channels; ++c) {
        for (std::size_t kh = 0; kh < wp.kernelH; ++kh) {
            for (std::size_t kw = 0; kw < wp.kernelW; ++kw, ++row) {
                float *dst = cols + row * out_h * out_w;
                for (std::size_t oh = 0; oh < out_h; ++oh) {
                    const long ih = static_cast<long>(oh * wp.strideH +
                                                      kh) -
                                    static_cast<long>(wp.padH);
                    if (ih < 0 || ih >= static_cast<long>(height)) {
                        dst += out_w;
                        continue;
                    }
                    const float *src = image +
                                       (c * height +
                                        static_cast<std::size_t>(ih)) *
                                           width;
                    for (std::size_t ow = 0; ow < out_w; ++ow) {
                        const long iw =
                            static_cast<long>(ow * wp.strideW + kw) -
                            static_cast<long>(wp.padW);
                        if (iw >= 0 && iw < static_cast<long>(width))
                            *dst = src[static_cast<std::size_t>(iw)];
                        ++dst;
                    }
                }
            }
        }
    }
}

void
col2im(const std::vector<float> &cols, std::size_t channels,
       std::size_t height, std::size_t width, const WindowParams &wp,
       float *image)
{
    col2im(cols.data(), channels, height, width, wp, image);
}

void
col2im(const float *cols, std::size_t channels, std::size_t height,
       std::size_t width, const WindowParams &wp, float *image)
{
    const std::size_t out_h = wp.outH(height);
    const std::size_t out_w = wp.outW(width);
    std::memset(image, 0, channels * height * width * sizeof(float));

    std::size_t row = 0;
    for (std::size_t c = 0; c < channels; ++c) {
        for (std::size_t kh = 0; kh < wp.kernelH; ++kh) {
            for (std::size_t kw = 0; kw < wp.kernelW; ++kw, ++row) {
                const float *src = cols + row * out_h * out_w;
                for (std::size_t oh = 0; oh < out_h; ++oh) {
                    const long ih = static_cast<long>(oh * wp.strideH +
                                                      kh) -
                                    static_cast<long>(wp.padH);
                    if (ih < 0 || ih >= static_cast<long>(height)) {
                        src += out_w;
                        continue;
                    }
                    float *dst = image +
                                 (c * height +
                                  static_cast<std::size_t>(ih)) *
                                     width;
                    for (std::size_t ow = 0; ow < out_w; ++ow) {
                        const long iw =
                            static_cast<long>(ow * wp.strideW + kw) -
                            static_cast<long>(wp.padW);
                        if (iw >= 0 && iw < static_cast<long>(width))
                            dst[static_cast<std::size_t>(iw)] += *src;
                        ++src;
                    }
                }
            }
        }
    }
}

// The matmul family below is retained as a compatibility veneer over
// the kernel layer (tensor/kernels.hh): the named-shape gemm API is
// the primary interface, and these wrappers dispatch to the active
// backend like any other caller.

void
matmul(const float *a, const float *b, float *c, std::size_t m,
       std::size_t k, std::size_t n, bool accumulate)
{
    kernels::Epilogue ep;
    ep.accumulate = accumulate;
    kernels::gemm(a, kernels::MatShape{m, k}, b, kernels::MatShape{k, n},
                  c, ep);
}

void
matmulTransA(const float *a, const float *b, float *c, std::size_t m,
             std::size_t k, std::size_t n, bool accumulate)
{
    kernels::Epilogue ep;
    ep.accumulate = accumulate;
    kernels::gemmTransA(a, kernels::MatShape{k, m}, b,
                        kernels::MatShape{k, n}, c, ep);
}

void
matmulTransB(const float *a, const float *b, float *c, std::size_t m,
             std::size_t k, std::size_t n, bool accumulate)
{
    kernels::Epilogue ep;
    ep.accumulate = accumulate;
    kernels::gemmTransB(a, kernels::MatShape{m, k}, b,
                        kernels::MatShape{n, k}, c, ep);
}

} // namespace redeye
