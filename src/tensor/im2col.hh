/**
 * @file
 * im2col/col2im lowering for convolution.
 *
 * Convolution is computed as a matrix product over patch columns; the
 * backward pass scatters gradients back with col2im. Both operate on a
 * single batch item (the caller loops over the batch).
 */

#ifndef REDEYE_TENSOR_IM2COL_HH
#define REDEYE_TENSOR_IM2COL_HH

#include <cstddef>
#include <vector>

namespace redeye {

/** Static parameters of a 2-D sliding-window op. */
struct WindowParams {
    std::size_t kernelH = 1;
    std::size_t kernelW = 1;
    std::size_t strideH = 1;
    std::size_t strideW = 1;
    std::size_t padH = 0;
    std::size_t padW = 0;

    /** Output extent for the given input extent (floor semantics). */
    std::size_t
    outH(std::size_t in_h) const
    {
        return (in_h + 2 * padH - kernelH) / strideH + 1;
    }

    std::size_t
    outW(std::size_t in_w) const
    {
        return (in_w + 2 * padW - kernelW) / strideW + 1;
    }
};

/**
 * Expand one CHW image into a (C*kh*kw) x (outH*outW) column matrix.
 * Out-of-bounds (padding) taps read as zero.
 *
 * @param image CHW input, size channels*height*width.
 * @param cols Output buffer, resized by the call.
 */
void im2col(const float *image, std::size_t channels, std::size_t height,
            std::size_t width, const WindowParams &wp,
            std::vector<float> &cols);

/**
 * As above, writing into a caller-provided buffer of
 * channels*kernelH*kernelW*outH*outW floats. The buffer is cleared by
 * the call; the caller chooses where it lives (workspace arena,
 * vector, stack).
 */
void im2col(const float *image, std::size_t channels, std::size_t height,
            std::size_t width, const WindowParams &wp, float *cols);

/**
 * Scatter a column matrix back into a CHW image (accumulating), the
 * adjoint of im2col. @p image must be pre-sized and is zeroed first.
 */
void col2im(const std::vector<float> &cols, std::size_t channels,
            std::size_t height, std::size_t width, const WindowParams &wp,
            float *image);

/** As above, from a caller-provided column buffer. */
void col2im(const float *cols, std::size_t channels, std::size_t height,
            std::size_t width, const WindowParams &wp, float *image);

/**
 * Row-major matrix product: C[m x n] = A[m x k] * B[k x n], with
 * optional accumulation into C.
 *
 * The matmul family is a deprecated compatibility veneer over the
 * kernel layer (tensor/kernels.hh) and dispatches to the active
 * backend. Call kernels::gemm and friends instead: their named
 * MatShape parameters make the per-variant meaning of m/k/n explicit
 * and validated, and their Epilogue subsumes the accumulate flag.
 */
[[deprecated("call kernels::gemm with MatShape operands")]]
void matmul(const float *a, const float *b, float *c, std::size_t m,
            std::size_t k, std::size_t n, bool accumulate = false);

/**
 * Row-major product with A transposed: C[m x n] = A^T[m x k] * B[k x n]
 * where A is stored as [k x m].
 */
[[deprecated("call kernels::gemmTransA with MatShape operands")]]
void matmulTransA(const float *a, const float *b, float *c, std::size_t m,
                  std::size_t k, std::size_t n, bool accumulate = false);

/**
 * Row-major product with B transposed: C[m x n] = A[m x k] * B^T[k x n]
 * where B is stored as [n x k].
 */
[[deprecated("call kernels::gemmTransB with MatShape operands")]]
void matmulTransB(const float *a, const float *b, float *c, std::size_t m,
                  std::size_t k, std::size_t n, bool accumulate = false);

} // namespace redeye

#endif // REDEYE_TENSOR_IM2COL_HH
