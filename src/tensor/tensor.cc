#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"
#include "core/rng.hh"

namespace redeye {

Tensor::Tensor(const Shape &shape) : shape_(shape), data_(shape.size())
{
}

Tensor::Tensor(const Shape &shape, float fill_value)
    : shape_(shape), data_(shape.size(), fill_value)
{
}

Tensor::Tensor(const Shape &shape, std::vector<float> data)
    : shape_(shape), data_(std::move(data))
{
    panic_if(data_.size() != shape_.size(),
             "tensor data size ", data_.size(), " != shape ",
             shape_.str());
}

float &
Tensor::checkedAt(std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w)
{
    panic_if(n >= shape_.n || c >= shape_.c || h >= shape_.h ||
                 w >= shape_.w,
             "tensor index (", n, ",", c, ",", h, ",", w,
             ") out of bounds for ", shape_.str());
    return at(n, c, h, w);
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Tensor::fillUniform(Rng &rng, float lo, float hi)
{
    for (auto &x : data_)
        x = static_cast<float>(rng.uniform(lo, hi));
}

void
Tensor::fillGaussian(Rng &rng, float mean, float stddev)
{
    for (auto &x : data_)
        x = static_cast<float>(rng.gaussian(mean, stddev));
}

Tensor
Tensor::reshaped(const Shape &shape) const
{
    panic_if(shape.size() != size(), "reshape ", shape_.str(), " -> ",
             shape.str(), " changes element count");
    return Tensor(shape, data_);
}

Tensor
Tensor::slice(std::size_t batch_index) const
{
    panic_if(batch_index >= shape_.n, "slice index ", batch_index,
             " out of range for ", shape_.str());
    Shape s(1, shape_.c, shape_.h, shape_.w);
    const std::size_t stride = shape_.sliceSize();
    std::vector<float> out(data_.begin() + batch_index * stride,
                           data_.begin() + (batch_index + 1) * stride);
    return Tensor(s, std::move(out));
}

void
Tensor::sliceInto(std::size_t batch_index, Tensor &out) const
{
    panic_if(batch_index >= shape_.n, "slice index ", batch_index,
             " out of range for ", shape_.str());
    out.shape_ = Shape(1, shape_.c, shape_.h, shape_.w);
    const std::size_t stride = shape_.sliceSize();
    out.data_.assign(data_.begin() + batch_index * stride,
                     data_.begin() + (batch_index + 1) * stride);
}

double
Tensor::sum() const
{
    double acc = 0.0;
    for (float x : data_)
        acc += x;
    return acc;
}

double
Tensor::mean() const
{
    if (data_.empty())
        return 0.0;
    return sum() / static_cast<double>(data_.size());
}

float
Tensor::absMax() const
{
    float m = 0.0f;
    for (float x : data_)
        m = std::max(m, std::fabs(x));
    return m;
}

void
Tensor::scale(float factor)
{
    for (auto &x : data_)
        x *= factor;
}

void
Tensor::add(const Tensor &other)
{
    axpy(1.0f, other);
}

void
Tensor::axpy(float alpha, const Tensor &other)
{
    panic_if(other.size() != size(), "axpy size mismatch: ",
             shape_.str(), " vs ", other.shape().str());
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += alpha * other.data_[i];
}

void
Tensor::clamp(float lo, float hi)
{
    for (auto &x : data_)
        x = std::clamp(x, lo, hi);
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    panic_if(a.size() != b.size(), "maxAbsDiff size mismatch");
    float m = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

} // namespace redeye
