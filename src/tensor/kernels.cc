#include "tensor/kernels.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#if defined(__AVX512F__) || (defined(__AVX2__) && defined(__FMA__))
#include <immintrin.h>
#endif

#include "core/exec.hh"
#include "core/logging.hh"
#include "core/workspace.hh"

namespace redeye {
namespace kernels {

// ---------------------------------------------------------------------
// Backend selection.
// ---------------------------------------------------------------------

namespace {

// -1 = no override; else static_cast<int>(Backend).
std::atomic<int> g_override{-1};

Backend
envBackend()
{
    static const Backend resolved = [] {
        const char *raw = std::getenv("RedeyeKernelBackend");
        if (raw == nullptr || *raw == '\0')
            return Backend::Blocked;
        std::string v(raw);
        for (char &ch : v)
            ch = static_cast<char>(
                std::tolower(static_cast<unsigned char>(ch)));
        if (v == "reference")
            return Backend::Reference;
        if (v == "blocked")
            return Backend::Blocked;
        fatal("RedeyeKernelBackend='", raw,
              "' (expected 'reference' or 'blocked')");
    }();
    return resolved;
}

} // namespace

Backend
backend()
{
    const int o = g_override.load(std::memory_order_relaxed);
    return o < 0 ? envBackend() : static_cast<Backend>(o);
}

void
setBackend(Backend b)
{
    g_override.store(static_cast<int>(b), std::memory_order_relaxed);
}

void
clearBackendOverride()
{
    g_override.store(-1, std::memory_order_relaxed);
}

const char *
backendName(Backend b)
{
    return b == Backend::Reference ? "reference" : "blocked";
}

// ---------------------------------------------------------------------
// Reference backend: the original scalar loops, kept verbatim. These
// are the golden model the differential tests compare against, and
// pinning RedeyeKernelBackend=reference reproduces historical outputs
// bit for bit.
// ---------------------------------------------------------------------

namespace {

void
refGemm(const float *a, const float *b, float *c, std::size_t m,
        std::size_t k, std::size_t n, bool accumulate)
{
    if (!accumulate)
        std::memset(c, 0, m * n * sizeof(float));
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t p = 0; p < k; ++p) {
            const float av = a[i * k + p];
            if (av == 0.0f)
                continue;
            const float *brow = b + p * n;
            float *crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
refGemmTransA(const float *a, const float *b, float *c, std::size_t m,
              std::size_t k, std::size_t n, bool accumulate)
{
    if (!accumulate)
        std::memset(c, 0, m * n * sizeof(float));
    for (std::size_t p = 0; p < k; ++p) {
        const float *arow = a + p * m;
        const float *brow = b + p * n;
        for (std::size_t i = 0; i < m; ++i) {
            const float av = arow[i];
            if (av == 0.0f)
                continue;
            float *crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
refGemmTransB(const float *a, const float *b, float *c, std::size_t m,
              std::size_t k, std::size_t n, bool accumulate)
{
    if (!accumulate)
        std::memset(c, 0, m * n * sizeof(float));
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = a + i * k;
        for (std::size_t j = 0; j < n; ++j) {
            const float *brow = b + j * k;
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                acc += arow[p] * brow[p];
            c[i * n + j] += acc;
        }
    }
}

// ---------------------------------------------------------------------
// Blocked backend.
//
// Three-level cache blocking (NC columns of B, KC of the shared
// dimension, MC rows of A) around an MR x NR register-tiled
// microkernel over packed panels:
//
//   packA: MC x KC panel, stored as MR-row slivers, column-major
//          within a sliver (a[p*MR + i]), zero-padded to MR;
//   packB: KC x NC panel, stored as NR-column slivers, row-major
//          within a sliver (b[p*NR + j]), zero-padded to NR.
//
// The packing routines absorb the transpose variants, so all three
// products share one microkernel. Accumulation order per C element
// is fixed by the loop nest (KC blocks outer, packed k inner), so a
// given shape always produces the same bits on a given build,
// independent of thread count or call context.
// ---------------------------------------------------------------------

// The microkernel accumulates an MR x NR tile in registers: two SIMD
// lanes per row, so NR tracks the widest vector the build targets
// (2 x 16 floats with AVX-512, 2 x 8 otherwise). With the 32-entry
// AVX-512 register file MR=8 fits (16 accumulators) and divides the
// channel counts of every conv in the evaluation nets exactly; the
// 16-register AVX2 file caps the tile at MR=6.
#if defined(__AVX512F__)
constexpr std::size_t MR = 8;
constexpr std::size_t NR = 32;
#else
constexpr std::size_t MR = 6;
constexpr std::size_t NR = 16;
#endif
constexpr std::size_t MC = 96;   // multiple of MR
constexpr std::size_t KC = 256;
constexpr std::size_t NC = 1024; // multiple of NR

// Pack-panel capacities, in floats (MC and NC are multiples of
// MR/NR, the rounding is belt-and-braces).
constexpr std::size_t kPackAFloats = ((MC + MR - 1) / MR) * MR * KC;
constexpr std::size_t kPackBFloats = ((NC + NR - 1) / NR) * NR * KC;

/**
 * Thread-local packing scratch for callers with no Workspace
 * attached (tools, training loops, the context-free entry points).
 * Serving paths hand gemm an ExecContext with a Workspace, whose
 * lane arenas supply the panels instead — the resize here would
 * otherwise heap-allocate the first time a fresh worker thread
 * serves a frame, breaking the zero steady-state-allocation
 * guarantee (the PR-6 counting allocator now asserts it cannot).
 */
struct TlsPack {
    std::vector<float> packA; // MC x KC, MR-padded
    std::vector<float> packB; // KC x NC, NR-padded
};

thread_local TlsPack tls_pack;

/** Pack panels for one GEMM worker. */
struct PackBufs {
    float *a = nullptr;
    float *b = nullptr;
};

/**
 * Carve pack panels from @p ws's lane @p lane (inside @p scope, so
 * the bytes rewind when the caller's scope closes), or fall back to
 * the thread-local vectors when no workspace is attached. The arena
 * is reserved for the whole footprint up front: growing between the
 * two allocs would invalidate the first span.
 */
PackBufs
packBufs(redeye::Workspace *ws, std::size_t lane,
         std::optional<ArenaScope> &scope)
{
    if (ws != nullptr) {
        Arena &arena = ws->arena(lane);
        scope.emplace(arena);
        arena.reserve(arena.used() +
                      (kPackAFloats + kPackBFloats + 32) *
                          sizeof(float));
        PackBufs bufs;
        bufs.a = arena.alloc<float>(kPackAFloats);
        bufs.b = arena.alloc<float>(kPackBFloats);
        return bufs;
    }
    tls_pack.packA.resize(kPackAFloats);
    tls_pack.packB.resize(kPackBFloats);
    return PackBufs{tls_pack.packA.data(), tls_pack.packB.data()};
}

/**
 * Pack an mc x kc panel of logical A (m x k) starting at (i0, p0)
 * into MR-row slivers. @p trans selects storage: false = row-major
 * [m x k] with leading dimension @p ld (= k), true = A stored
 * transposed [k x m] with leading dimension @p ld (= m).
 */
void
packAPanel(const float *a, bool trans, std::size_t ld, std::size_t i0,
           std::size_t mc, std::size_t p0, std::size_t kc, float *dst)
{
    for (std::size_t ib = 0; ib < mc; ib += MR) {
        const std::size_t mr = std::min(MR, mc - ib);
        if (mr == MR) {
            // Full sliver: branch-free copies (contiguous when A is
            // stored transposed).
            if (trans) {
                for (std::size_t p = 0; p < kc; ++p, dst += MR)
                    std::memcpy(dst,
                                a + (p0 + p) * ld + i0 + ib,
                                MR * sizeof(float));
            } else {
                for (std::size_t p = 0; p < kc; ++p)
                    for (std::size_t r = 0; r < MR; ++r)
                        *dst++ = a[(i0 + ib + r) * ld + p0 + p];
            }
            continue;
        }
        for (std::size_t p = 0; p < kc; ++p) {
            for (std::size_t r = 0; r < MR; ++r) {
                const std::size_t i = i0 + ib + r;
                *dst++ = r < mr
                             ? (trans ? a[(p0 + p) * ld + i]
                                      : a[i * ld + p0 + p])
                             : 0.0f;
            }
        }
    }
}

/**
 * Pack a kc x nc panel of logical B (k x n) starting at (p0, j0)
 * into NR-column slivers. @p trans selects storage: false =
 * row-major [k x n] with leading dimension @p ld (= n), true = B
 * stored transposed [n x k] with leading dimension @p ld (= k).
 */
void
packBPanel(const float *b, bool trans, std::size_t ld, std::size_t p0,
           std::size_t kc, std::size_t j0, std::size_t nc, float *dst)
{
    for (std::size_t jb = 0; jb < nc; jb += NR) {
        const std::size_t nr = std::min(NR, nc - jb);
        if (nr == NR) {
            // Full sliver: branch-free copies (contiguous when B is
            // stored row-major).
            if (trans) {
                for (std::size_t p = 0; p < kc; ++p)
                    for (std::size_t s = 0; s < NR; ++s)
                        *dst++ = b[(j0 + jb + s) * ld + p0 + p];
            } else {
                for (std::size_t p = 0; p < kc; ++p, dst += NR)
                    std::memcpy(dst,
                                b + (p0 + p) * ld + j0 + jb,
                                NR * sizeof(float));
            }
            continue;
        }
        for (std::size_t p = 0; p < kc; ++p) {
            for (std::size_t s = 0; s < NR; ++s) {
                const std::size_t j = j0 + jb + s;
                *dst++ = s < nr
                             ? (trans ? b[j * ld + p0 + p]
                                      : b[(p0 + p) * ld + j])
                             : 0.0f;
            }
        }
    }
}

/**
 * ctile[MR x NR] = sum over kc of packed-A sliver x packed-B sliver.
 * Zero-padded pack lanes only feed tile elements the caller
 * discards.
 */
#if defined(__AVX512F__)
void
microTile(std::size_t kc, const float *ap, const float *bp,
          float *ctile)
{
    __m512 acc[MR][2];
    for (std::size_t i = 0; i < MR; ++i) {
        acc[i][0] = _mm512_setzero_ps();
        acc[i][1] = _mm512_setzero_ps();
    }
    for (std::size_t p = 0; p < kc; ++p) {
        const __m512 b0 = _mm512_loadu_ps(bp + p * NR);
        const __m512 b1 = _mm512_loadu_ps(bp + p * NR + 16);
        for (std::size_t i = 0; i < MR; ++i) {
            const __m512 ai = _mm512_set1_ps(ap[p * MR + i]);
            acc[i][0] = _mm512_fmadd_ps(ai, b0, acc[i][0]);
            acc[i][1] = _mm512_fmadd_ps(ai, b1, acc[i][1]);
        }
    }
    for (std::size_t i = 0; i < MR; ++i) {
        _mm512_storeu_ps(ctile + i * NR, acc[i][0]);
        _mm512_storeu_ps(ctile + i * NR + 16, acc[i][1]);
    }
}
#elif defined(__AVX2__) && defined(__FMA__)
void
microTile(std::size_t kc, const float *ap, const float *bp,
          float *ctile)
{
    __m256 acc[MR][2];
    for (std::size_t i = 0; i < MR; ++i) {
        acc[i][0] = _mm256_setzero_ps();
        acc[i][1] = _mm256_setzero_ps();
    }
    for (std::size_t p = 0; p < kc; ++p) {
        const __m256 b0 = _mm256_loadu_ps(bp + p * NR);
        const __m256 b1 = _mm256_loadu_ps(bp + p * NR + 8);
        for (std::size_t i = 0; i < MR; ++i) {
            const __m256 ai = _mm256_broadcast_ss(ap + p * MR + i);
            acc[i][0] = _mm256_fmadd_ps(ai, b0, acc[i][0]);
            acc[i][1] = _mm256_fmadd_ps(ai, b1, acc[i][1]);
        }
    }
    for (std::size_t i = 0; i < MR; ++i) {
        _mm256_storeu_ps(ctile + i * NR, acc[i][0]);
        _mm256_storeu_ps(ctile + i * NR + 8, acc[i][1]);
    }
}
#else
void
microTile(std::size_t kc, const float *ap, const float *bp,
          float *ctile)
{
    // Portable 8-wide-friendly form: the j loop is a fixed-trip-count
    // innermost loop over contiguous data, which autovectorizers take.
    float acc[MR * NR] = {};
    for (std::size_t p = 0; p < kc; ++p) {
        const float *brow = bp + p * NR;
        const float *acol = ap + p * MR;
        for (std::size_t i = 0; i < MR; ++i) {
            const float av = acol[i];
            float *crow = acc + i * NR;
            for (std::size_t j = 0; j < NR; ++j)
                crow[j] += av * brow[j];
        }
    }
    std::memcpy(ctile, acc, sizeof(acc));
}
#endif

/**
 * May the no-pack fast path serve this call? The predicate is the
 * audited, explicit form of what used to be an inline condition that
 * keyed only on `m % MR == 0 && k <= KC`: it must also pin down the
 * epilogue and the column range, because the fast path fuses its C
 * update (masked load-add-store) instead of going through the packed
 * path's tile-then-update sequence.
 *
 *  - plain row-major operands only (packing absorbs transposes);
 *  - full MR row blocks (the row loop has no tail masking);
 *  - single k panel (k <= KC) with an L1-resident B (k * n bounded);
 *  - epilogue: overwrite and plain accumulate are handled — both are
 *    one rounding event per C element, identical to the packed
 *    path's tile write-back — and broadcast biases are applied
 *    *after* either kernel, so they do not gate the path. Any future
 *    fused epilogue (scaling, clamping) must extend this predicate
 *    or it fails safe into the packed path.
 *
 * Column ranges are safe at any [j0, j1): the kernel addresses B and
 * C with the true leading dimension n, so a slice computes exactly
 * the bits the full-range call computes for those columns. (The
 * pre-audit kernel had no range arguments; handing it a slice with
 * `c + j0` and a width of `j1 - j0` would have strided C wrongly and
 * corrupted the neighbouring workers' columns — the guard that was
 * genuinely missing once the column loop went parallel.)
 */
[[maybe_unused]] bool
directEligible(bool transA, bool transB, std::size_t m, std::size_t k,
               std::size_t n, const Epilogue &ep)
{
#if defined(__AVX512F__)
    (void)ep; // accumulate and bias are both handled; see above
    return !transA && !transB && m % MR == 0 && k <= KC &&
           k * n <= 12288;
#else
    (void)transA;
    (void)transB;
    (void)m;
    (void)k;
    (void)n;
    (void)ep;
    return false;
#endif
}

#if defined(__AVX512F__)
/**
 * Direct C[m x n] (+)= A[m x k] * B[k x n] without packing, over
 * columns [j0, j1), for problems whose B panel is L1-resident: the
 * row-major loads are already contiguous per k-step, so skipping the
 * pack and tile-copy passes wins. Requires m to be a multiple of MR;
 * column tails use masked loads/stores (masked-out lanes cannot
 * fault). B and C are addressed with the full leading dimension n,
 * so per-column bits are independent of the range partition.
 */
void
directGemm(const float *a, const float *b, float *c, std::size_t m,
           std::size_t k, std::size_t n, std::size_t j0,
           std::size_t j1, bool accumulate)
{
    for (std::size_t jb = j0; jb < j1; jb += NR) {
        const std::size_t nr = std::min(NR, j1 - jb);
        const unsigned l0 =
            nr >= 16 ? 16u : static_cast<unsigned>(nr);
        const unsigned l1 =
            nr >= 16 ? static_cast<unsigned>(nr - 16) : 0u;
        const __mmask16 m0 =
            static_cast<__mmask16>((1u << l0) - 1u);
        const __mmask16 m1 =
            static_cast<__mmask16>((1u << l1) - 1u);
        for (std::size_t ib = 0; ib < m; ib += MR) {
            __m512 acc[MR][2];
            for (std::size_t i = 0; i < MR; ++i) {
                acc[i][0] = _mm512_setzero_ps();
                acc[i][1] = _mm512_setzero_ps();
            }
            for (std::size_t p = 0; p < k; ++p) {
                const float *brow = b + p * n + jb;
                const __m512 b0 = _mm512_maskz_loadu_ps(m0, brow);
                const __m512 b1 =
                    _mm512_maskz_loadu_ps(m1, brow + 16);
                for (std::size_t i = 0; i < MR; ++i) {
                    const __m512 ai =
                        _mm512_set1_ps(a[(ib + i) * k + p]);
                    acc[i][0] = _mm512_fmadd_ps(ai, b0, acc[i][0]);
                    acc[i][1] = _mm512_fmadd_ps(ai, b1, acc[i][1]);
                }
            }
            for (std::size_t i = 0; i < MR; ++i) {
                float *crow = c + (ib + i) * n + jb;
                if (accumulate) {
                    acc[i][0] = _mm512_add_ps(
                        _mm512_maskz_loadu_ps(m0, crow), acc[i][0]);
                    acc[i][1] = _mm512_add_ps(
                        _mm512_maskz_loadu_ps(m1, crow + 16),
                        acc[i][1]);
                }
                _mm512_mask_storeu_ps(crow, m0, acc[i][0]);
                _mm512_mask_storeu_ps(crow + 16, m1, acc[i][1]);
            }
        }
    }
}
#endif

/**
 * Blocked C[m x n] (+)= op(A) * op(B) over columns [j0, j1).
 * @p transA / @p transB name the storage of the operands (see
 * packAPanel/packBPanel); @p packA / @p packB are the worker's pack
 * panels (kPackAFloats / kPackBFloats capacity).
 *
 * ## Why a column slice is bit-identical to the full product
 *
 * B and C are addressed with the true leading dimension n, so a
 * worker owning [j0, j1) touches exactly the bytes the full-range
 * call would touch for those columns. Each C element's value is one
 * fmadd chain over p in ascending order (KC blocks outer, packed k
 * inner) inside its own SIMD lane; which sliver a column lands in —
 * and hence which mask or zero-padded lanes ride along — never feeds
 * the arithmetic of another lane. Any partition of [0, n) therefore
 * reproduces the serial bits, which is what lets the parallel
 * dispatcher below pick chunk counts freely (DESIGN.md §12).
 */
void
blockedGemmCols(const float *a, bool transA, const float *b,
                bool transB, float *c, std::size_t m, std::size_t k,
                std::size_t n, std::size_t j0, std::size_t j1,
                bool accumulate, const PackBufs &pack)
{
    if (m == 0 || j1 <= j0)
        return;
    if (k == 0) {
        if (!accumulate) {
            for (std::size_t i = 0; i < m; ++i)
                std::memset(c + i * n + j0, 0,
                            (j1 - j0) * sizeof(float));
        }
        return;
    }

#if defined(__AVX512F__)
    // Small single-panel products (B resident in L1, all row slivers
    // full) skip packing entirely.
    if (directEligible(transA, transB, m, k, n,
                       accumulate ? Epilogue::accumulateInto()
                                  : Epilogue{})) {
        directGemm(a, b, c, m, k, n, j0, j1, accumulate);
        return;
    }
#endif

    const std::size_t lda = transA ? m : k;
    const std::size_t ldb = transB ? k : n;

    float ctile[MR * NR];

    for (std::size_t jc = j0; jc < j1; jc += NC) {
        const std::size_t nc = std::min(NC, j1 - jc);
        for (std::size_t pc = 0; pc < k; pc += KC) {
            const std::size_t kc = std::min(KC, k - pc);
            // The first k-panel overwrites its C block instead of
            // adding into pre-zeroed memory, saving a full pass over
            // C for single-panel (k <= KC) products.
            const bool overwrite = !accumulate && pc == 0;
            packBPanel(b, transB, ldb, pc, kc, jc, nc, pack.b);
            for (std::size_t ic = 0; ic < m; ic += MC) {
                const std::size_t mc = std::min(MC, m - ic);
                packAPanel(a, transA, lda, ic, mc, pc, kc, pack.a);
                for (std::size_t jb = 0; jb < nc; jb += NR) {
                    const std::size_t nr = std::min(NR, nc - jb);
                    const float *bp = pack.b + (jb / NR) * kc * NR;
                    for (std::size_t ib = 0; ib < mc; ib += MR) {
                        const std::size_t mr = std::min(MR, mc - ib);
                        const float *ap = pack.a + (ib / MR) * kc * MR;
                        microTile(kc, ap, bp, ctile);
                        float *cblk =
                            c + (ic + ib) * n + jc + jb;
                        for (std::size_t i = 0; i < mr; ++i) {
                            float *crow = cblk + i * n;
                            const float *trow = ctile + i * NR;
                            if (overwrite) {
                                for (std::size_t j = 0; j < nr; ++j)
                                    crow[j] = trow[j];
                            } else {
                                for (std::size_t j = 0; j < nr; ++j)
                                    crow[j] += trow[j];
                            }
                        }
                    }
                }
            }
        }
    }
}

/**
 * Broadcast-add an epilogue bias over columns [j0, j1) of C. Each
 * column's update is independent, so parallel workers apply the
 * epilogue to their own slice with full-range bits.
 */
void
applyBiasCols(float *c, std::size_t m, std::size_t n, std::size_t j0,
              std::size_t j1, BiasKind kind, const float *bias)
{
    if (kind == BiasKind::None)
        return;
    panic_if(bias == nullptr, "gemm epilogue bias is null");
    if (kind == BiasKind::PerRow) {
        for (std::size_t i = 0; i < m; ++i) {
            const float bv = bias[i];
            float *crow = c + i * n;
            for (std::size_t j = j0; j < j1; ++j)
                crow[j] += bv;
        }
    } else {
        for (std::size_t i = 0; i < m; ++i) {
            float *crow = c + i * n;
            for (std::size_t j = j0; j < j1; ++j)
                crow[j] += bias[j];
        }
    }
}

/** Full-range epilogue bias (the serial path). */
void
applyBias(float *c, std::size_t m, std::size_t n, const Epilogue &ep)
{
    applyBiasCols(c, m, n, 0, n, ep.biasKind, ep.bias);
}

/** Serial blocked product over the full column range. */
void
blockedGemm(const float *a, bool transA, const float *b, bool transB,
            float *c, std::size_t m, std::size_t k, std::size_t n,
            bool accumulate, redeye::Workspace *ws = nullptr,
            std::size_t lane = 0)
{
    if (m == 0 || n == 0)
        return;
    std::optional<ArenaScope> scope;
    const PackBufs pack = packBufs(ws, lane, scope);
    blockedGemmCols(a, transA, b, transB, c, m, k, n, 0, n,
                    accumulate, pack);
}

// ---------------------------------------------------------------------
// Parallel dispatch: partition the column loop over the context's
// pool. Work units are NR-column slivers so no worker ever owns a
// fraction of a sliver; parallelForChunks' static chunking maps unit
// ranges to lanes, and each lane packs into panels carved from its
// own Workspace arena. Column independence (see blockedGemmCols)
// makes the result bit-identical at any chunk count.
// ---------------------------------------------------------------------

/**
 * Parallelize only when the pool can actually help: a real pool,
 * not already nested inside one of its chunks (a nested run would
 * execute inline on lanes the enclosing loop may be using), at least
 * two slivers to hand out, and enough arithmetic to amortize the
 * redundant A packing (each worker packs the full A panel for its
 * column range).
 */
bool
shouldParallelize(ExecContext &ctx, std::size_t m, std::size_t k,
                  std::size_t n)
{
    ThreadPool *pool = ctx.pool();
    if (pool == nullptr || pool->threads() <= 1)
        return false;
    if (ThreadPool::executingPool() == pool)
        return false;
    if (n < 2 * NR)
        return false;
    // ~256 Kflop: below this the fork/join overhead dominates.
    return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
               static_cast<double>(n) >=
           262144.0;
}

/**
 * Parallel blocked product: columns [0, n) split into NR-sliver
 * ranges across the context's pool. The shared epilogue is applied
 * by each worker to its own slice.
 */
void
parallelBlockedGemm(const float *a, bool transA, const float *b,
                    bool transB, float *c, std::size_t m,
                    std::size_t k, std::size_t n, const Epilogue &ep,
                    ExecContext &ctx)
{
    redeye::Workspace *ws = ctx.workspace();
    const std::size_t slivers = (n + NR - 1) / NR;
    parallelForChunks(ctx, slivers,
                      [&](std::size_t u0, std::size_t u1,
                          std::size_t lane) {
                          const std::size_t jlo = u0 * NR;
                          const std::size_t jhi =
                              std::min(u1 * NR, n);
                          std::optional<ArenaScope> scope;
                          const PackBufs pack =
                              packBufs(ws, lane, scope);
                          blockedGemmCols(a, transA, b, transB, c, m,
                                          k, n, jlo, jhi,
                                          ep.accumulate, pack);
                          applyBiasCols(c, m, n, jlo, jhi, ep.biasKind,
                                        ep.bias);
                      });
}

} // namespace

// ---------------------------------------------------------------------
// Dispatched entry points.
// ---------------------------------------------------------------------

namespace {

/**
 * Common dispatcher behind every entry point. @p ctx selects the
 * parallel path (nullptr = context-free flavour: serial, TLS or
 * caller-workspace scratch).
 */
void
dispatchGemm(const float *a, bool transA, const float *b, bool transB,
             float *c, std::size_t m, std::size_t k, std::size_t n,
             const Epilogue &ep, ExecContext *ctx, std::size_t lane)
{
    if (backend() == Backend::Reference) {
        if (transA)
            refGemmTransA(a, b, c, m, k, n, ep.accumulate);
        else if (transB)
            refGemmTransB(a, b, c, m, k, n, ep.accumulate);
        else
            refGemm(a, b, c, m, k, n, ep.accumulate);
        applyBias(c, m, n, ep);
        return;
    }
    if (ctx != nullptr && shouldParallelize(*ctx, m, k, n)) {
        parallelBlockedGemm(a, transA, b, transB, c, m, k, n, ep,
                            *ctx);
        return;
    }
    blockedGemm(a, transA, b, transB, c, m, k, n, ep.accumulate,
                ctx != nullptr ? ctx->workspace() : nullptr, lane);
    applyBias(c, m, n, ep);
}

void
checkGemmShapes(MatShape as, MatShape bs)
{
    fatal_if(as.cols != bs.rows, "gemm: A is ", as.rows, "x", as.cols,
             " but B is ", bs.rows, "x", bs.cols,
             " (need A.cols == B.rows)");
}

} // namespace

void
gemm(const float *a, MatShape as, const float *b, MatShape bs,
     float *c, const Epilogue &ep)
{
    checkGemmShapes(as, bs);
    dispatchGemm(a, false, b, false, c, as.rows, as.cols, bs.cols, ep,
                 nullptr, 0);
}

void
gemmTransA(const float *a, MatShape as, const float *b, MatShape bs,
           float *c, const Epilogue &ep)
{
    fatal_if(as.rows != bs.rows, "gemmTransA: A stored ", as.rows, "x",
             as.cols, " but B is ", bs.rows, "x", bs.cols,
             " (need A.rows == B.rows)");
    dispatchGemm(a, true, b, false, c, as.cols, as.rows, bs.cols, ep,
                 nullptr, 0);
}

void
gemmTransB(const float *a, MatShape as, const float *b, MatShape bs,
           float *c, const Epilogue &ep)
{
    fatal_if(as.cols != bs.cols, "gemmTransB: A is ", as.rows, "x",
             as.cols, " but B stored ", bs.rows, "x", bs.cols,
             " (need A.cols == B.cols)");
    dispatchGemm(a, false, b, true, c, as.rows, as.cols, bs.rows, ep,
                 nullptr, 0);
}

void
gemm(const float *a, MatShape as, const float *b, MatShape bs,
     float *c, const Epilogue &ep, ExecContext &ctx, std::size_t lane)
{
    checkGemmShapes(as, bs);
    dispatchGemm(a, false, b, false, c, as.rows, as.cols, bs.cols, ep,
                 &ctx, lane);
}

void
gemmTransA(const float *a, MatShape as, const float *b, MatShape bs,
           float *c, const Epilogue &ep, ExecContext &ctx,
           std::size_t lane)
{
    fatal_if(as.rows != bs.rows, "gemmTransA: A stored ", as.rows, "x",
             as.cols, " but B is ", bs.rows, "x", bs.cols,
             " (need A.rows == B.rows)");
    dispatchGemm(a, true, b, false, c, as.cols, as.rows, bs.cols, ep,
                 &ctx, lane);
}

void
gemmTransB(const float *a, MatShape as, const float *b, MatShape bs,
           float *c, const Epilogue &ep, ExecContext &ctx,
           std::size_t lane)
{
    fatal_if(as.cols != bs.cols, "gemmTransB: A is ", as.rows, "x",
             as.cols, " but B stored ", bs.rows, "x", bs.cols,
             " (need A.cols == B.cols)");
    dispatchGemm(a, false, b, true, c, as.rows, as.cols, bs.rows, ep,
                 &ctx, lane);
}

void
gemmBatch(const GemmProblem *problems, std::size_t count, MatShape as,
          MatShape bs, const Epilogue &ep, ExecContext &ctx,
          std::size_t lane)
{
    checkGemmShapes(as, bs);
    const std::size_t m = as.rows, k = as.cols, n = bs.cols;
    if (count == 0 || m == 0 || n == 0)
        return;

    if (backend() == Backend::Reference) {
        for (std::size_t p = 0; p < count; ++p) {
            const GemmProblem &gp = problems[p];
            refGemm(gp.a, gp.b, gp.c, m, k, n, ep.accumulate);
            applyBiasCols(gp.c, m, n, 0, n, ep.biasKind,
                          gp.bias != nullptr ? gp.bias : ep.bias);
        }
        return;
    }

    redeye::Workspace *ws = ctx.workspace();
    ThreadPool *pool = ctx.pool();
    const bool nested =
        pool != nullptr && ThreadPool::executingPool() == pool;

    // Work units are NR-column slivers of each problem, flattened so
    // chunks may span problem boundaries: a 16-frame batch with
    // 32-sliver products load-balances across 8 lanes evenly instead
    // of rounding to whole frames.
    const std::size_t per = (n + NR - 1) / NR;
    auto runUnits = [&](std::size_t u0, std::size_t u1,
                        std::size_t worker_lane) {
        std::optional<ArenaScope> scope;
        const PackBufs pack = packBufs(ws, worker_lane, scope);
        std::size_t u = u0;
        while (u < u1) {
            const std::size_t p = u / per;
            const std::size_t uend = std::min(u1, (p + 1) * per);
            const std::size_t jlo = (u - p * per) * NR;
            const std::size_t jhi =
                std::min((uend - p * per) * NR, n);
            const GemmProblem &gp = problems[p];
            blockedGemmCols(gp.a, false, gp.b, false, gp.c, m, k, n,
                            jlo, jhi, ep.accumulate, pack);
            applyBiasCols(gp.c, m, n, jlo, jhi, ep.biasKind,
                          gp.bias != nullptr ? gp.bias : ep.bias);
            u = uend;
        }
    };

    if (pool == nullptr || pool->threads() <= 1 || nested) {
        // Serial (or nested inside this context's own pool, where
        // fanning out would reuse lanes the enclosing loop owns):
        // run every unit on the caller's lane.
        runUnits(0, count * per, lane);
        return;
    }
    parallelForChunks(ctx, count * per,
                      [&](std::size_t u0, std::size_t u1,
                          std::size_t worker_lane) {
                          runUnits(u0, u1, worker_lane);
                      });
}

std::size_t
gemmPackFloats()
{
    // Alignment headroom so two alloc<float> carves never outgrow a
    // reserve sized by this value.
    return kPackAFloats + kPackBFloats + 32;
}

// ---------------------------------------------------------------------
// im2col dispatch. The fast path precomputes the in-bounds output
// range per row instead of branching per element, and memcpys
// stride-1 rows; it is byte-identical to the reference loop (both
// leave padding taps at the 0.0f the buffer was cleared to).
// ---------------------------------------------------------------------

namespace {

void
fastIm2col(const float *image, std::size_t channels,
           std::size_t height, std::size_t width,
           const WindowParams &wp, float *cols)
{
    const std::size_t out_h = wp.outH(height);
    const std::size_t out_w = wp.outW(width);
    const std::size_t rows = channels * wp.kernelH * wp.kernelW;
    std::memset(cols, 0, rows * out_h * out_w * sizeof(float));

    std::size_t row = 0;
    for (std::size_t c = 0; c < channels; ++c) {
        for (std::size_t kh = 0; kh < wp.kernelH; ++kh) {
            for (std::size_t kw = 0; kw < wp.kernelW; ++kw, ++row) {
                // Valid ow satisfy 0 <= ow*strideW + kw - padW < width.
                const long off = static_cast<long>(kw) -
                                 static_cast<long>(wp.padW);
                const long sw = static_cast<long>(wp.strideW);
                std::size_t lo = 0;
                if (off < 0)
                    lo = static_cast<std::size_t>((-off + sw - 1) /
                                                  sw);
                const long hi_num = static_cast<long>(width) - 1 - off;
                std::size_t hi =
                    hi_num < 0 ? 0
                               : std::min<std::size_t>(
                                     out_w, static_cast<std::size_t>(
                                                hi_num / sw) +
                                                1);
                if (hi < lo)
                    hi = lo;

                float *dst = cols + row * out_h * out_w;
                for (std::size_t oh = 0; oh < out_h; ++oh) {
                    const long ih = static_cast<long>(oh * wp.strideH +
                                                      kh) -
                                    static_cast<long>(wp.padH);
                    if (ih < 0 || ih >= static_cast<long>(height)) {
                        dst += out_w;
                        continue;
                    }
                    const float *src =
                        image +
                        (c * height + static_cast<std::size_t>(ih)) *
                            width +
                        static_cast<std::size_t>(
                            static_cast<long>(lo) * sw + off);
                    if (wp.strideW == 1) {
                        std::memcpy(dst + lo, src,
                                    (hi - lo) * sizeof(float));
                    } else {
                        for (std::size_t ow = lo; ow < hi; ++ow) {
                            dst[ow] = *src;
                            src += wp.strideW;
                        }
                    }
                    dst += out_w;
                }
            }
        }
    }
}

} // namespace

void
im2col(const float *image, std::size_t channels, std::size_t height,
       std::size_t width, const WindowParams &wp,
       std::vector<float> &cols)
{
    const std::size_t rows = channels * wp.kernelH * wp.kernelW;
    cols.resize(rows * wp.outH(height) * wp.outW(width));
    kernels::im2col(image, channels, height, width, wp, cols.data());
}

void
im2col(const float *image, std::size_t channels, std::size_t height,
       std::size_t width, const WindowParams &wp, float *cols)
{
    if (backend() == Backend::Reference)
        redeye::im2col(image, channels, height, width, wp, cols);
    else
        fastIm2col(image, channels, height, width, wp, cols);
}

void
col2im(const std::vector<float> &cols, std::size_t channels,
       std::size_t height, std::size_t width, const WindowParams &wp,
       float *image)
{
    redeye::col2im(cols.data(), channels, height, width, wp, image);
}

void
col2im(const float *cols, std::size_t channels, std::size_t height,
       std::size_t width, const WindowParams &wp, float *image)
{
    redeye::col2im(cols, channels, height, width, wp, image);
}

} // namespace kernels
} // namespace redeye
