#include "tensor/kernels.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__AVX512F__) || (defined(__AVX2__) && defined(__FMA__))
#include <immintrin.h>
#endif

#include "core/logging.hh"

namespace redeye {
namespace kernels {

// ---------------------------------------------------------------------
// Backend selection.
// ---------------------------------------------------------------------

namespace {

// -1 = no override; else static_cast<int>(Backend).
std::atomic<int> g_override{-1};

Backend
envBackend()
{
    static const Backend resolved = [] {
        const char *raw = std::getenv("RedeyeKernelBackend");
        if (raw == nullptr || *raw == '\0')
            return Backend::Blocked;
        std::string v(raw);
        for (char &ch : v)
            ch = static_cast<char>(
                std::tolower(static_cast<unsigned char>(ch)));
        if (v == "reference")
            return Backend::Reference;
        if (v == "blocked")
            return Backend::Blocked;
        fatal("RedeyeKernelBackend='", raw,
              "' (expected 'reference' or 'blocked')");
    }();
    return resolved;
}

} // namespace

Backend
backend()
{
    const int o = g_override.load(std::memory_order_relaxed);
    return o < 0 ? envBackend() : static_cast<Backend>(o);
}

void
setBackend(Backend b)
{
    g_override.store(static_cast<int>(b), std::memory_order_relaxed);
}

void
clearBackendOverride()
{
    g_override.store(-1, std::memory_order_relaxed);
}

const char *
backendName(Backend b)
{
    return b == Backend::Reference ? "reference" : "blocked";
}

// ---------------------------------------------------------------------
// Reference backend: the original scalar loops, kept verbatim. These
// are the golden model the differential tests compare against, and
// pinning RedeyeKernelBackend=reference reproduces historical outputs
// bit for bit.
// ---------------------------------------------------------------------

namespace {

void
refGemm(const float *a, const float *b, float *c, std::size_t m,
        std::size_t k, std::size_t n, bool accumulate)
{
    if (!accumulate)
        std::memset(c, 0, m * n * sizeof(float));
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t p = 0; p < k; ++p) {
            const float av = a[i * k + p];
            if (av == 0.0f)
                continue;
            const float *brow = b + p * n;
            float *crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
refGemmTransA(const float *a, const float *b, float *c, std::size_t m,
              std::size_t k, std::size_t n, bool accumulate)
{
    if (!accumulate)
        std::memset(c, 0, m * n * sizeof(float));
    for (std::size_t p = 0; p < k; ++p) {
        const float *arow = a + p * m;
        const float *brow = b + p * n;
        for (std::size_t i = 0; i < m; ++i) {
            const float av = arow[i];
            if (av == 0.0f)
                continue;
            float *crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
refGemmTransB(const float *a, const float *b, float *c, std::size_t m,
              std::size_t k, std::size_t n, bool accumulate)
{
    if (!accumulate)
        std::memset(c, 0, m * n * sizeof(float));
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = a + i * k;
        for (std::size_t j = 0; j < n; ++j) {
            const float *brow = b + j * k;
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                acc += arow[p] * brow[p];
            c[i * n + j] += acc;
        }
    }
}

// ---------------------------------------------------------------------
// Blocked backend.
//
// Three-level cache blocking (NC columns of B, KC of the shared
// dimension, MC rows of A) around an MR x NR register-tiled
// microkernel over packed panels:
//
//   packA: MC x KC panel, stored as MR-row slivers, column-major
//          within a sliver (a[p*MR + i]), zero-padded to MR;
//   packB: KC x NC panel, stored as NR-column slivers, row-major
//          within a sliver (b[p*NR + j]), zero-padded to NR.
//
// The packing routines absorb the transpose variants, so all three
// products share one microkernel. Accumulation order per C element
// is fixed by the loop nest (KC blocks outer, packed k inner), so a
// given shape always produces the same bits on a given build,
// independent of thread count or call context.
// ---------------------------------------------------------------------

// The microkernel accumulates an MR x NR tile in registers: two SIMD
// lanes per row, so NR tracks the widest vector the build targets
// (2 x 16 floats with AVX-512, 2 x 8 otherwise). With the 32-entry
// AVX-512 register file MR=8 fits (16 accumulators) and divides the
// channel counts of every conv in the evaluation nets exactly; the
// 16-register AVX2 file caps the tile at MR=6.
#if defined(__AVX512F__)
constexpr std::size_t MR = 8;
constexpr std::size_t NR = 32;
#else
constexpr std::size_t MR = 6;
constexpr std::size_t NR = 16;
#endif
constexpr std::size_t MC = 96;   // multiple of MR
constexpr std::size_t KC = 256;
constexpr std::size_t NC = 1024; // multiple of NR

// Per-thread packing scratch so gemm calls inside ExecContext chunks
// never contend or allocate in steady state.
struct Workspace {
    std::vector<float> packA; // MC x KC, MR-padded
    std::vector<float> packB; // KC x NC, NR-padded
};

thread_local Workspace tls_ws;

/**
 * Pack an mc x kc panel of logical A (m x k) starting at (i0, p0)
 * into MR-row slivers. @p trans selects storage: false = row-major
 * [m x k] with leading dimension @p ld (= k), true = A stored
 * transposed [k x m] with leading dimension @p ld (= m).
 */
void
packAPanel(const float *a, bool trans, std::size_t ld, std::size_t i0,
           std::size_t mc, std::size_t p0, std::size_t kc, float *dst)
{
    for (std::size_t ib = 0; ib < mc; ib += MR) {
        const std::size_t mr = std::min(MR, mc - ib);
        if (mr == MR) {
            // Full sliver: branch-free copies (contiguous when A is
            // stored transposed).
            if (trans) {
                for (std::size_t p = 0; p < kc; ++p, dst += MR)
                    std::memcpy(dst,
                                a + (p0 + p) * ld + i0 + ib,
                                MR * sizeof(float));
            } else {
                for (std::size_t p = 0; p < kc; ++p)
                    for (std::size_t r = 0; r < MR; ++r)
                        *dst++ = a[(i0 + ib + r) * ld + p0 + p];
            }
            continue;
        }
        for (std::size_t p = 0; p < kc; ++p) {
            for (std::size_t r = 0; r < MR; ++r) {
                const std::size_t i = i0 + ib + r;
                *dst++ = r < mr
                             ? (trans ? a[(p0 + p) * ld + i]
                                      : a[i * ld + p0 + p])
                             : 0.0f;
            }
        }
    }
}

/**
 * Pack a kc x nc panel of logical B (k x n) starting at (p0, j0)
 * into NR-column slivers. @p trans selects storage: false =
 * row-major [k x n] with leading dimension @p ld (= n), true = B
 * stored transposed [n x k] with leading dimension @p ld (= k).
 */
void
packBPanel(const float *b, bool trans, std::size_t ld, std::size_t p0,
           std::size_t kc, std::size_t j0, std::size_t nc, float *dst)
{
    for (std::size_t jb = 0; jb < nc; jb += NR) {
        const std::size_t nr = std::min(NR, nc - jb);
        if (nr == NR) {
            // Full sliver: branch-free copies (contiguous when B is
            // stored row-major).
            if (trans) {
                for (std::size_t p = 0; p < kc; ++p)
                    for (std::size_t s = 0; s < NR; ++s)
                        *dst++ = b[(j0 + jb + s) * ld + p0 + p];
            } else {
                for (std::size_t p = 0; p < kc; ++p, dst += NR)
                    std::memcpy(dst,
                                b + (p0 + p) * ld + j0 + jb,
                                NR * sizeof(float));
            }
            continue;
        }
        for (std::size_t p = 0; p < kc; ++p) {
            for (std::size_t s = 0; s < NR; ++s) {
                const std::size_t j = j0 + jb + s;
                *dst++ = s < nr
                             ? (trans ? b[j * ld + p0 + p]
                                      : b[(p0 + p) * ld + j])
                             : 0.0f;
            }
        }
    }
}

/**
 * ctile[MR x NR] = sum over kc of packed-A sliver x packed-B sliver.
 * Zero-padded pack lanes only feed tile elements the caller
 * discards.
 */
#if defined(__AVX512F__)
void
microTile(std::size_t kc, const float *ap, const float *bp,
          float *ctile)
{
    __m512 acc[MR][2];
    for (std::size_t i = 0; i < MR; ++i) {
        acc[i][0] = _mm512_setzero_ps();
        acc[i][1] = _mm512_setzero_ps();
    }
    for (std::size_t p = 0; p < kc; ++p) {
        const __m512 b0 = _mm512_loadu_ps(bp + p * NR);
        const __m512 b1 = _mm512_loadu_ps(bp + p * NR + 16);
        for (std::size_t i = 0; i < MR; ++i) {
            const __m512 ai = _mm512_set1_ps(ap[p * MR + i]);
            acc[i][0] = _mm512_fmadd_ps(ai, b0, acc[i][0]);
            acc[i][1] = _mm512_fmadd_ps(ai, b1, acc[i][1]);
        }
    }
    for (std::size_t i = 0; i < MR; ++i) {
        _mm512_storeu_ps(ctile + i * NR, acc[i][0]);
        _mm512_storeu_ps(ctile + i * NR + 16, acc[i][1]);
    }
}
#elif defined(__AVX2__) && defined(__FMA__)
void
microTile(std::size_t kc, const float *ap, const float *bp,
          float *ctile)
{
    __m256 acc[MR][2];
    for (std::size_t i = 0; i < MR; ++i) {
        acc[i][0] = _mm256_setzero_ps();
        acc[i][1] = _mm256_setzero_ps();
    }
    for (std::size_t p = 0; p < kc; ++p) {
        const __m256 b0 = _mm256_loadu_ps(bp + p * NR);
        const __m256 b1 = _mm256_loadu_ps(bp + p * NR + 8);
        for (std::size_t i = 0; i < MR; ++i) {
            const __m256 ai = _mm256_broadcast_ss(ap + p * MR + i);
            acc[i][0] = _mm256_fmadd_ps(ai, b0, acc[i][0]);
            acc[i][1] = _mm256_fmadd_ps(ai, b1, acc[i][1]);
        }
    }
    for (std::size_t i = 0; i < MR; ++i) {
        _mm256_storeu_ps(ctile + i * NR, acc[i][0]);
        _mm256_storeu_ps(ctile + i * NR + 8, acc[i][1]);
    }
}
#else
void
microTile(std::size_t kc, const float *ap, const float *bp,
          float *ctile)
{
    // Portable 8-wide-friendly form: the j loop is a fixed-trip-count
    // innermost loop over contiguous data, which autovectorizers take.
    float acc[MR * NR] = {};
    for (std::size_t p = 0; p < kc; ++p) {
        const float *brow = bp + p * NR;
        const float *acol = ap + p * MR;
        for (std::size_t i = 0; i < MR; ++i) {
            const float av = acol[i];
            float *crow = acc + i * NR;
            for (std::size_t j = 0; j < NR; ++j)
                crow[j] += av * brow[j];
        }
    }
    std::memcpy(ctile, acc, sizeof(acc));
}
#endif

#if defined(__AVX512F__)
/**
 * Direct C[m x n] (+)= A[m x k] * B[k x n] without packing, for
 * problems whose B panel is L1-resident: the row-major loads are
 * already contiguous per k-step, so skipping the pack and
 * tile-copy passes wins. Requires m to be a multiple of MR; column
 * tails use masked loads/stores (masked-out lanes cannot fault).
 */
void
directGemm(const float *a, const float *b, float *c, std::size_t m,
           std::size_t k, std::size_t n, bool accumulate)
{
    for (std::size_t jb = 0; jb < n; jb += NR) {
        const std::size_t nr = std::min(NR, n - jb);
        const unsigned l0 =
            nr >= 16 ? 16u : static_cast<unsigned>(nr);
        const unsigned l1 =
            nr >= 16 ? static_cast<unsigned>(nr - 16) : 0u;
        const __mmask16 m0 =
            static_cast<__mmask16>((1u << l0) - 1u);
        const __mmask16 m1 =
            static_cast<__mmask16>((1u << l1) - 1u);
        for (std::size_t ib = 0; ib < m; ib += MR) {
            __m512 acc[MR][2];
            for (std::size_t i = 0; i < MR; ++i) {
                acc[i][0] = _mm512_setzero_ps();
                acc[i][1] = _mm512_setzero_ps();
            }
            for (std::size_t p = 0; p < k; ++p) {
                const float *brow = b + p * n + jb;
                const __m512 b0 = _mm512_maskz_loadu_ps(m0, brow);
                const __m512 b1 =
                    _mm512_maskz_loadu_ps(m1, brow + 16);
                for (std::size_t i = 0; i < MR; ++i) {
                    const __m512 ai =
                        _mm512_set1_ps(a[(ib + i) * k + p]);
                    acc[i][0] = _mm512_fmadd_ps(ai, b0, acc[i][0]);
                    acc[i][1] = _mm512_fmadd_ps(ai, b1, acc[i][1]);
                }
            }
            for (std::size_t i = 0; i < MR; ++i) {
                float *crow = c + (ib + i) * n + jb;
                if (accumulate) {
                    acc[i][0] = _mm512_add_ps(
                        _mm512_maskz_loadu_ps(m0, crow), acc[i][0]);
                    acc[i][1] = _mm512_add_ps(
                        _mm512_maskz_loadu_ps(m1, crow + 16),
                        acc[i][1]);
                }
                _mm512_mask_storeu_ps(crow, m0, acc[i][0]);
                _mm512_mask_storeu_ps(crow + 16, m1, acc[i][1]);
            }
        }
    }
}
#endif

/**
 * Blocked C[m x n] (+)= op(A) * op(B). @p transA / @p transB name the
 * storage of the operands (see packAPanel/packBPanel).
 */
void
blockedGemm(const float *a, bool transA, const float *b, bool transB,
            float *c, std::size_t m, std::size_t k, std::size_t n,
            bool accumulate)
{
    if (m == 0 || n == 0)
        return;
    if (k == 0) {
        if (!accumulate)
            std::memset(c, 0, m * n * sizeof(float));
        return;
    }

#if defined(__AVX512F__)
    // Small single-panel products (B resident in L1, all row slivers
    // full) skip packing entirely.
    if (!transA && !transB && m % MR == 0 && k <= KC &&
        k * n <= 12288) {
        directGemm(a, b, c, m, k, n, accumulate);
        return;
    }
#endif

    const std::size_t lda = transA ? m : k;
    const std::size_t ldb = transB ? k : n;

    Workspace &ws = tls_ws;
    ws.packA.resize(((MC + MR - 1) / MR) * MR * KC);
    ws.packB.resize(((NC + NR - 1) / NR) * NR * KC);

    float ctile[MR * NR];

    for (std::size_t jc = 0; jc < n; jc += NC) {
        const std::size_t nc = std::min(NC, n - jc);
        for (std::size_t pc = 0; pc < k; pc += KC) {
            const std::size_t kc = std::min(KC, k - pc);
            // The first k-panel overwrites its C block instead of
            // adding into pre-zeroed memory, saving a full pass over
            // C for single-panel (k <= KC) products.
            const bool overwrite = !accumulate && pc == 0;
            packBPanel(b, transB, ldb, pc, kc, jc, nc,
                       ws.packB.data());
            for (std::size_t ic = 0; ic < m; ic += MC) {
                const std::size_t mc = std::min(MC, m - ic);
                packAPanel(a, transA, lda, ic, mc, pc, kc,
                           ws.packA.data());
                for (std::size_t jb = 0; jb < nc; jb += NR) {
                    const std::size_t nr = std::min(NR, nc - jb);
                    const float *bp =
                        ws.packB.data() + (jb / NR) * kc * NR;
                    for (std::size_t ib = 0; ib < mc; ib += MR) {
                        const std::size_t mr = std::min(MR, mc - ib);
                        const float *ap =
                            ws.packA.data() + (ib / MR) * kc * MR;
                        microTile(kc, ap, bp, ctile);
                        float *cblk =
                            c + (ic + ib) * n + jc + jb;
                        for (std::size_t i = 0; i < mr; ++i) {
                            float *crow = cblk + i * n;
                            const float *trow = ctile + i * NR;
                            if (overwrite) {
                                for (std::size_t j = 0; j < nr; ++j)
                                    crow[j] = trow[j];
                            } else {
                                for (std::size_t j = 0; j < nr; ++j)
                                    crow[j] += trow[j];
                            }
                        }
                    }
                }
            }
        }
    }
}

/** Broadcast-add the epilogue bias over C. */
void
applyBias(float *c, std::size_t m, std::size_t n, const Epilogue &ep)
{
    if (ep.biasKind == BiasKind::None)
        return;
    panic_if(ep.bias == nullptr, "gemm epilogue bias is null");
    if (ep.biasKind == BiasKind::PerRow) {
        for (std::size_t i = 0; i < m; ++i) {
            const float bv = ep.bias[i];
            float *crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += bv;
        }
    } else {
        for (std::size_t i = 0; i < m; ++i) {
            float *crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += ep.bias[j];
        }
    }
}

} // namespace

// ---------------------------------------------------------------------
// Dispatched entry points.
// ---------------------------------------------------------------------

void
gemm(const float *a, MatShape as, const float *b, MatShape bs,
     float *c, const Epilogue &ep)
{
    fatal_if(as.cols != bs.rows, "gemm: A is ", as.rows, "x", as.cols,
             " but B is ", bs.rows, "x", bs.cols,
             " (need A.cols == B.rows)");
    const std::size_t m = as.rows, k = as.cols, n = bs.cols;
    if (backend() == Backend::Reference)
        refGemm(a, b, c, m, k, n, ep.accumulate);
    else
        blockedGemm(a, false, b, false, c, m, k, n, ep.accumulate);
    applyBias(c, m, n, ep);
}

void
gemmTransA(const float *a, MatShape as, const float *b, MatShape bs,
           float *c, const Epilogue &ep)
{
    fatal_if(as.rows != bs.rows, "gemmTransA: A stored ", as.rows, "x",
             as.cols, " but B is ", bs.rows, "x", bs.cols,
             " (need A.rows == B.rows)");
    const std::size_t m = as.cols, k = as.rows, n = bs.cols;
    if (backend() == Backend::Reference)
        refGemmTransA(a, b, c, m, k, n, ep.accumulate);
    else
        blockedGemm(a, true, b, false, c, m, k, n, ep.accumulate);
    applyBias(c, m, n, ep);
}

void
gemmTransB(const float *a, MatShape as, const float *b, MatShape bs,
           float *c, const Epilogue &ep)
{
    fatal_if(as.cols != bs.cols, "gemmTransB: A is ", as.rows, "x",
             as.cols, " but B stored ", bs.rows, "x", bs.cols,
             " (need A.cols == B.cols)");
    const std::size_t m = as.rows, k = as.cols, n = bs.rows;
    if (backend() == Backend::Reference)
        refGemmTransB(a, b, c, m, k, n, ep.accumulate);
    else
        blockedGemm(a, false, b, true, c, m, k, n, ep.accumulate);
    applyBias(c, m, n, ep);
}

// ---------------------------------------------------------------------
// im2col dispatch. The fast path precomputes the in-bounds output
// range per row instead of branching per element, and memcpys
// stride-1 rows; it is byte-identical to the reference loop (both
// leave padding taps at the 0.0f the buffer was cleared to).
// ---------------------------------------------------------------------

namespace {

void
fastIm2col(const float *image, std::size_t channels,
           std::size_t height, std::size_t width,
           const WindowParams &wp, float *cols)
{
    const std::size_t out_h = wp.outH(height);
    const std::size_t out_w = wp.outW(width);
    const std::size_t rows = channels * wp.kernelH * wp.kernelW;
    std::memset(cols, 0, rows * out_h * out_w * sizeof(float));

    std::size_t row = 0;
    for (std::size_t c = 0; c < channels; ++c) {
        for (std::size_t kh = 0; kh < wp.kernelH; ++kh) {
            for (std::size_t kw = 0; kw < wp.kernelW; ++kw, ++row) {
                // Valid ow satisfy 0 <= ow*strideW + kw - padW < width.
                const long off = static_cast<long>(kw) -
                                 static_cast<long>(wp.padW);
                const long sw = static_cast<long>(wp.strideW);
                std::size_t lo = 0;
                if (off < 0)
                    lo = static_cast<std::size_t>((-off + sw - 1) /
                                                  sw);
                const long hi_num = static_cast<long>(width) - 1 - off;
                std::size_t hi =
                    hi_num < 0 ? 0
                               : std::min<std::size_t>(
                                     out_w, static_cast<std::size_t>(
                                                hi_num / sw) +
                                                1);
                if (hi < lo)
                    hi = lo;

                float *dst = cols + row * out_h * out_w;
                for (std::size_t oh = 0; oh < out_h; ++oh) {
                    const long ih = static_cast<long>(oh * wp.strideH +
                                                      kh) -
                                    static_cast<long>(wp.padH);
                    if (ih < 0 || ih >= static_cast<long>(height)) {
                        dst += out_w;
                        continue;
                    }
                    const float *src =
                        image +
                        (c * height + static_cast<std::size_t>(ih)) *
                            width +
                        static_cast<std::size_t>(
                            static_cast<long>(lo) * sw + off);
                    if (wp.strideW == 1) {
                        std::memcpy(dst + lo, src,
                                    (hi - lo) * sizeof(float));
                    } else {
                        for (std::size_t ow = lo; ow < hi; ++ow) {
                            dst[ow] = *src;
                            src += wp.strideW;
                        }
                    }
                    dst += out_w;
                }
            }
        }
    }
}

} // namespace

void
im2col(const float *image, std::size_t channels, std::size_t height,
       std::size_t width, const WindowParams &wp,
       std::vector<float> &cols)
{
    const std::size_t rows = channels * wp.kernelH * wp.kernelW;
    cols.resize(rows * wp.outH(height) * wp.outW(width));
    kernels::im2col(image, channels, height, width, wp, cols.data());
}

void
im2col(const float *image, std::size_t channels, std::size_t height,
       std::size_t width, const WindowParams &wp, float *cols)
{
    if (backend() == Backend::Reference)
        redeye::im2col(image, channels, height, width, wp, cols);
    else
        fastIm2col(image, channels, height, width, wp, cols);
}

void
col2im(const std::vector<float> &cols, std::size_t channels,
       std::size_t height, std::size_t width, const WindowParams &wp,
       float *image)
{
    redeye::col2im(cols.data(), channels, height, width, wp, image);
}

void
col2im(const float *cols, std::size_t channels, std::size_t height,
       std::size_t width, const WindowParams &wp, float *image)
{
    redeye::col2im(cols, channels, height, width, wp, image);
}

} // namespace kernels
} // namespace redeye
