#include "core/structural_hash.hh"

#include <cstring>

namespace redeye {

StructuralHasher &
StructuralHasher::mixDouble(double value)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return mix(bits);
}

StructuralHasher &
StructuralHasher::mixString(std::string_view s)
{
    mix(s.size());
    // Pack bytes eight at a time; the length token above keeps
    // "ab" + "c" distinct from "a" + "bc".
    std::uint64_t word = 0;
    std::size_t filled = 0;
    for (unsigned char ch : s) {
        word |= static_cast<std::uint64_t>(ch) << (8 * filled);
        if (++filled == 8) {
            mix(word);
            word = 0;
            filled = 0;
        }
    }
    if (filled > 0)
        mix(word);
    return *this;
}

} // namespace redeye
