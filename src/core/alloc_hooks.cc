/**
 * @file
 * Global operator new/delete replacements that count allocations.
 *
 * Built as its own library (`reallocspy`) and linked only into
 * binaries that assert or report allocation behaviour; see
 * core/alloc.hh for the counting API and the linking contract.
 *
 * Under ASan/TSan the sanitizer runtime must own operator new for
 * its interceptors and poisoning to work, so the replacements are
 * compiled out and counting reports itself unavailable.
 */

#include "core/alloc.hh"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define REDEYE_ALLOC_HOOKS_DISABLED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define REDEYE_ALLOC_HOOKS_DISABLED 1
#endif

#ifndef REDEYE_ALLOC_HOOKS_DISABLED

#include <cstdlib>
#include <new>

namespace {

void *
countedAlloc(std::size_t size)
{
    redeye::alloc::g_allocations.fetch_add(1,
                                           std::memory_order_relaxed);
    return std::malloc(size ? size : 1);
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    redeye::alloc::g_allocations.fetch_add(1,
                                           std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, align < sizeof(void *) ? sizeof(void *)
                                                  : align,
                       size ? size : 1) != 0)
        return nullptr;
    return p;
}

// Announce the hooks to core/alloc.hh before main() runs.
[[maybe_unused]] const bool registered = [] {
    redeye::alloc::g_hooksLinked.store(true,
                                       std::memory_order_relaxed);
    return true;
}();

} // namespace

void *
operator new(std::size_t size)
{
    void *p = countedAlloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    void *p = countedAlignedAlloc(size,
                                  static_cast<std::size_t>(align));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void *
operator new(std::size_t size, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    return countedAlignedAlloc(size,
                               static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    return countedAlignedAlloc(size,
                               static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

#endif // REDEYE_ALLOC_HOOKS_DISABLED
