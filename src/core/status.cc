#include "core/status.hh"

namespace redeye {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "OK";
      case StatusCode::InvalidArgument:
        return "INVALID_ARGUMENT";
      case StatusCode::FailedPrecondition:
        return "FAILED_PRECONDITION";
      case StatusCode::DeadlineExceeded:
        return "DEADLINE_EXCEEDED";
      case StatusCode::ResourceExhausted:
        return "RESOURCE_EXHAUSTED";
      case StatusCode::Unavailable:
        return "UNAVAILABLE";
      case StatusCode::Internal:
        return "INTERNAL";
    }
    return "?";
}

std::string
Status::str() const
{
    if (ok())
        return "OK";
    std::string s = statusCodeName(code_);
    if (!message_.empty()) {
        s += ": ";
        s += message_;
    }
    return s;
}

} // namespace redeye
