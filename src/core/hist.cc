#include "core/hist.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/logging.hh"

namespace redeye {

LogHistogram::LogHistogram(double lo, double hi,
                           unsigned buckets_per_octave)
    : lo_(lo), hi_(hi), perOctave_(buckets_per_octave)
{
    fatal_if(lo <= 0.0, "histogram lo must be positive");
    fatal_if(hi <= lo, "histogram hi must exceed lo");
    fatal_if(buckets_per_octave == 0,
             "histogram needs at least one bucket per octave");
    const double octaves = std::log2(hi / lo);
    const std::size_t regular = static_cast<std::size_t>(
        std::ceil(octaves * perOctave_));
    // Bucket 0 is the underflow bin (x < lo); the last bucket is the
    // overflow bin (x >= hi); `regular` geometric bins sit between.
    counts_.assign(regular + 2, 0);
    reset();
}

void
LogHistogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

std::size_t
LogHistogram::bucketOf(double x) const
{
    if (!(x >= lo_)) // also catches NaN into underflow
        return 0;
    if (x >= hi_)
        return counts_.size() - 1;
    const auto i = static_cast<std::size_t>(
        std::log2(x / lo_) * perOctave_);
    return std::min(i + 1, counts_.size() - 2);
}

double
LogHistogram::bucketLo(std::size_t i) const
{
    return lo_ * std::exp2(static_cast<double>(i - 1) / perOctave_);
}

void
LogHistogram::add(double x)
{
    ++counts_[bucketOf(x)];
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

bool
LogHistogram::mergeableWith(const LogHistogram &other) const
{
    return lo_ == other.lo_ && hi_ == other.hi_ &&
           perOctave_ == other.perOctave_;
}

void
LogHistogram::merge(const LogHistogram &other)
{
    fatal_if(!mergeableWith(other),
             "merging histograms with different bucket layouts");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_) {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
}

double
LogHistogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::uint64_t
LogHistogram::bucketCount(std::size_t i) const
{
    fatal_if(i >= counts_.size(), "bucket index out of range");
    return counts_[i];
}

double
LogHistogram::percentileOr(double p, double fallback) const
{
    return count_ ? percentile(p) : fallback;
}

double
LogHistogram::percentile(double p) const
{
    fatal_if(count_ == 0, "percentile of an empty histogram");
    fatal_if(p < 0.0 || p > 100.0, "percentile must be in [0, 100]");

    // Target rank in [1, count]; find the bucket that straddles it.
    const double rank =
        std::max(1.0, p / 100.0 * static_cast<double>(count_));
    std::uint64_t seen = 0;
    std::size_t bucket = counts_.size() - 1;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (static_cast<double>(seen) >= rank) {
            bucket = i;
            break;
        }
    }

    double value;
    if (bucket == 0) {
        value = min_; // underflow bin: below resolution
    } else if (bucket == counts_.size() - 1) {
        value = max_; // overflow bin
    } else {
        // Interpolate geometrically inside the bucket by the rank's
        // position among the bucket's samples.
        const std::uint64_t below = seen - counts_[bucket];
        const double frac =
            (rank - static_cast<double>(below)) /
            static_cast<double>(counts_[bucket]);
        const double b_lo = bucketLo(bucket);
        const double b_hi =
            std::min(hi_, b_lo * std::exp2(1.0 / perOctave_));
        value = b_lo * std::pow(b_hi / b_lo, frac);
    }
    return std::clamp(value, min_, max_);
}

} // namespace redeye
