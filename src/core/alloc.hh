/**
 * @file
 * Heap-allocation counting: the instrument behind the "zero mallocs
 * per steady-state frame" invariant.
 *
 * The serving hot path is designed to allocate nothing after warmup
 * (see core/workspace.hh). That property is asserted, not hoped for:
 * a counting allocator — global operator new/delete replacements in
 * core/alloc_hooks.cc — increments the counters below on every heap
 * allocation, and the steady-state test serves N warmup frames, reads
 * the counter, serves M more and requires the delta to be zero.
 *
 * The hooks live in a separate library (`reallocspy`) linked only
 * into binaries that want counting (the allocation tests, the
 * serving bench); everything else is byte-for-byte unaffected. When
 * the hooks are not linked — or compiled out under ASan/TSan, whose
 * own interceptors must keep ownership of operator new —
 * countingAvailable() is false and callers skip the assertion.
 */

#ifndef REDEYE_CORE_ALLOC_HH
#define REDEYE_CORE_ALLOC_HH

#include <atomic>
#include <cstdint>

namespace redeye {
namespace alloc {

/** Internal: bumped by the operator-new replacements when linked. */
extern std::atomic<std::uint64_t> g_allocations;

/** Internal: set by a static initializer in alloc_hooks.cc. */
extern std::atomic<bool> g_hooksLinked;

/** True when the counting hooks are linked into this binary. */
inline bool
countingAvailable()
{
    return g_hooksLinked.load(std::memory_order_relaxed);
}

/** Heap allocations observed so far (0 if hooks are not linked). */
inline std::uint64_t
allocations()
{
    return g_allocations.load(std::memory_order_relaxed);
}

/**
 * Delta meter: construct, run the region of interest, read. Reads
 * zero when the hooks are not linked — pair with
 * countingAvailable() when a zero must be meaningful.
 */
class AllocationMeter
{
  public:
    AllocationMeter() : start_(allocations()) {}

    /** Allocations since construction (or the last restart()). */
    std::uint64_t delta() const { return allocations() - start_; }

    /** Re-arm the meter at the current count. */
    void restart() { start_ = allocations(); }

  private:
    std::uint64_t start_;
};

} // namespace alloc
} // namespace redeye

#endif // REDEYE_CORE_ALLOC_HH
