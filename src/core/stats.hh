/**
 * @file
 * Lightweight statistics accumulators used across the simulator for
 * signal/noise measurement and experiment reporting.
 */

#ifndef REDEYE_CORE_STATS_HH
#define REDEYE_CORE_STATS_HH

#include <cstddef>
#include <vector>

namespace redeye {

/**
 * Single-pass running mean/variance/extrema accumulator (Welford).
 */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Fold a whole range of samples. */
    template <typename It>
    void
    addRange(It first, It last)
    {
        for (; first != last; ++first)
            add(static_cast<double>(*first));
    }

    /** Number of samples folded so far. */
    std::size_t count() const { return count_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance (0 when fewer than 2 samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Mean of squared samples; the signal power for a zero-DC signal. */
    double meanSquare() const;

    /** Smallest sample seen (+inf when empty). */
    double min() const { return min_; }

    /** Largest sample seen (-inf when empty). */
    double max() const { return max_; }

    /** Reset to the empty state. */
    void reset();

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bin histogram over a closed interval; samples outside the
 * interval are clamped into the edge bins.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin (must exceed lo).
     * @param bins Number of bins (>= 1).
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Fold one sample. */
    void add(double x);

    /** Count in bin i. */
    std::size_t binCount(std::size_t i) const { return counts_.at(i); }

    /**
     * Approximate p-th percentile (p in [0, 100]) of the folded
     * samples, reconstructed from the bin counts by interpolating
     * within the bin that straddles the target rank. Resolution is
     * one bin width; fatal when the histogram is empty.
     */
    double percentile(double p) const;

    /** Center value of bin i. */
    double binCenter(std::size_t i) const;

    /** Number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** Total samples folded. */
    std::size_t total() const { return total_; }

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/**
 * Exact p-th percentile (p in [0, 100]) of @p values using linear
 * interpolation between closest ranks (the "exclusive" convention of
 * most plotting packages is avoided; this matches numpy's default):
 * p = 0 yields the minimum, p = 100 the maximum. The input is copied
 * and partially sorted; fatal when @p values is empty.
 */
double percentile(std::vector<double> values, double p);

/**
 * Measured signal-to-noise ratio between a clean reference and a noisy
 * realization of the same signal, in dB. Returns +inf for identical
 * vectors and -inf for an all-zero reference with nonzero noise.
 */
double measureSnrDb(const std::vector<float> &clean,
                    const std::vector<float> &noisy);

} // namespace redeye

#endif // REDEYE_CORE_STATS_HH
