#include "core/stats.hh"

#include <cmath>
#include <limits>

#include "core/logging.hh"

namespace redeye {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    sumSq_ += x * x;
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::meanSquare() const
{
    if (count_ == 0)
        return 0.0;
    return sumSq_ / static_cast<double>(count_);
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    fatal_if(bins == 0, "histogram needs at least one bin");
    fatal_if(hi <= lo, "histogram interval is empty: [", lo, ", ", hi,
             ")");
}

void
Histogram::add(double x)
{
    const double frac = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<long>(frac * static_cast<double>(bins()));
    if (idx < 0)
        idx = 0;
    if (idx >= static_cast<long>(bins()))
        idx = static_cast<long>(bins()) - 1;
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::binCenter(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(bins());
    return lo_ + (static_cast<double>(i) + 0.5) * width;
}

double
measureSnrDb(const std::vector<float> &clean,
             const std::vector<float> &noisy)
{
    panic_if(clean.size() != noisy.size(),
             "SNR operands differ in size: ", clean.size(), " vs ",
             noisy.size());

    double signal = 0.0;
    double noise = 0.0;
    for (std::size_t i = 0; i < clean.size(); ++i) {
        const double s = clean[i];
        const double n = static_cast<double>(noisy[i]) - s;
        signal += s * s;
        noise += n * n;
    }
    if (noise == 0.0)
        return std::numeric_limits<double>::infinity();
    if (signal == 0.0)
        return -std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(signal / noise);
}

} // namespace redeye
