#include "core/stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/logging.hh"

namespace redeye {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    sumSq_ += x * x;
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::meanSquare() const
{
    if (count_ == 0)
        return 0.0;
    return sumSq_ / static_cast<double>(count_);
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    fatal_if(bins == 0, "histogram needs at least one bin");
    fatal_if(hi <= lo, "histogram interval is empty: [", lo, ", ", hi,
             ")");
}

void
Histogram::add(double x)
{
    const double frac = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<long>(frac * static_cast<double>(bins()));
    if (idx < 0)
        idx = 0;
    if (idx >= static_cast<long>(bins()))
        idx = static_cast<long>(bins()) - 1;
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::percentile(double p) const
{
    fatal_if(total_ == 0, "percentile of an empty histogram");
    fatal_if(p < 0.0 || p > 100.0, "percentile rank out of range: ",
             p);
    const double target = p / 100.0 * static_cast<double>(total_);
    const double width = (hi_ - lo_) / static_cast<double>(bins());
    std::size_t below = 0;
    for (std::size_t i = 0; i < bins(); ++i) {
        const std::size_t in_bin = counts_[i];
        if (static_cast<double>(below + in_bin) >= target &&
            in_bin > 0) {
            // Interpolate within the straddling bin assuming its
            // samples are spread uniformly across the bin.
            const double frac =
                (target - static_cast<double>(below)) /
                static_cast<double>(in_bin);
            const double lo_edge =
                lo_ + static_cast<double>(i) * width;
            return lo_edge + std::clamp(frac, 0.0, 1.0) * width;
        }
        below += in_bin;
    }
    return hi_;
}

double
percentile(std::vector<double> values, double p)
{
    fatal_if(values.empty(), "percentile of an empty sample set");
    fatal_if(p < 0.0 || p > 100.0, "percentile rank out of range: ",
             p);
    const double rank = p / 100.0 *
                        static_cast<double>(values.size() - 1);
    const auto lo_idx = static_cast<std::size_t>(rank);
    const std::size_t hi_idx =
        std::min(lo_idx + 1, values.size() - 1);
    std::nth_element(values.begin(),
                     values.begin() + static_cast<std::ptrdiff_t>(lo_idx),
                     values.end());
    const double lo_val = values[lo_idx];
    if (hi_idx == lo_idx)
        return lo_val;
    // nth_element leaves [lo_idx+1, end) all >= lo_val; the next
    // order statistic is its minimum.
    const double hi_val = *std::min_element(
        values.begin() + static_cast<std::ptrdiff_t>(hi_idx),
        values.end());
    const double frac = rank - static_cast<double>(lo_idx);
    return lo_val + frac * (hi_val - lo_val);
}

double
Histogram::binCenter(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(bins());
    return lo_ + (static_cast<double>(i) + 0.5) * width;
}

double
measureSnrDb(const std::vector<float> &clean,
             const std::vector<float> &noisy)
{
    panic_if(clean.size() != noisy.size(),
             "SNR operands differ in size: ", clean.size(), " vs ",
             noisy.size());

    double signal = 0.0;
    double noise = 0.0;
    for (std::size_t i = 0; i < clean.size(); ++i) {
        const double s = clean[i];
        const double n = static_cast<double>(noisy[i]) - s;
        signal += s * s;
        noise += n * n;
    }
    if (noise == 0.0)
        return std::numeric_limits<double>::infinity();
    if (signal == 0.0)
        return -std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(signal / noise);
}

} // namespace redeye
