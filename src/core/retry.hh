/**
 * @file
 * Deadline, backoff and retry-budget utilities for serving runtimes.
 *
 * The fleet's fault-tolerance layer (src/fleet/engine.hh) retries
 * failed attempts on different devices, paces those retries with
 * jittered exponential backoff, and bounds the extra load retries can
 * inject with a per-class token budget. The primitives live here so
 * the streaming runtime and tools can share them.
 *
 * Determinism: nothing in this header draws randomness. Backoff
 * jitter is a pure function of a caller-supplied uniform draw, which
 * serving code derives from counter-based streams (core/rng.hh), so a
 * retry schedule is bit-reproducible across runs and machines.
 *
 * Retry classification is by Status code, never by message string
 * (DESIGN.md §13):
 *
 *  - DEADLINE_EXCEEDED   an attempt (or request) ran out of time;
 *                        retryable while the request deadline holds
 *  - UNAVAILABLE         the serving resource failed the attempt;
 *                        retryable on a different resource
 *  - RESOURCE_EXHAUSTED  admission/budget rejection; NOT retryable
 *                        (retrying against an exhausted resource only
 *                        amplifies the overload)
 */

#ifndef REDEYE_CORE_RETRY_HH
#define REDEYE_CORE_RETRY_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/status.hh"

namespace redeye {

/** Jittered exponential backoff parameters. */
struct BackoffConfig {
    double initialS = 0.005; ///< delay before the first retry
    double multiplier = 2.0; ///< growth per attempt (>= 1)
    double maxS = 0.25;      ///< delay ceiling

    /**
     * Jitter fraction in [0, 1]: the realized delay is
     * base * (1 - jitter + jitter * u) for a uniform draw u in
     * [0, 1), so 0 = fully deterministic, 1 = "full jitter" over
     * (0, base].
     */
    double jitter = 0.5;
};

/**
 * Backoff delay before retry number @p attempt (0 = first retry).
 * Pure function of (config, attempt, u); @p u must be a uniform draw
 * in [0, 1) — callers derive it from a counter-based stream keyed by
 * the request so the schedule is deterministic.
 */
inline double
backoffDelayS(const BackoffConfig &config, unsigned attempt, double u)
{
    const double grow = std::pow(std::max(config.multiplier, 1.0),
                                 static_cast<double>(attempt));
    const double base =
        std::min(config.maxS, config.initialS * grow);
    const double j = std::clamp(config.jitter, 0.0, 1.0);
    return base * (1.0 - j + j * u);
}

/**
 * True when a failed attempt with this code may be retried (against
 * a different resource). See the file header for the taxonomy.
 */
inline bool
retryableStatus(StatusCode code)
{
    return code == StatusCode::DeadlineExceeded ||
           code == StatusCode::Unavailable;
}

/**
 * Token-bucket retry budget: every served request credits a fraction
 * of a token, every retry debits a whole one, so sustained retry
 * traffic is bounded at `ratio` times the request rate no matter how
 * hard the backend is failing (the classic retry-storm guard).
 *
 * Plain value type, externally synchronized (the fleet engine is
 * single-threaded); all state is a pair of doubles, so budgets can
 * live in pre-sized per-class arrays without heap allocation.
 */
class RetryBudget
{
  public:
    RetryBudget() = default;

    /**
     * @param ratio Tokens credited per request (sustained retry
     * fraction). @param cap Token ceiling (burst allowance).
     * @param initial Starting balance (<= cap).
     */
    RetryBudget(double ratio, double cap, double initial)
        : ratio_(std::max(ratio, 0.0)), cap_(std::max(cap, 0.0)),
          tokens_(std::clamp(initial, 0.0, cap_))
    {
    }

    /** Credit the budget for one offered request. */
    void
    credit()
    {
        tokens_ = std::min(cap_, tokens_ + ratio_);
    }

    /** Spend one token; false (and no change) when broke. */
    bool
    tryAcquire()
    {
        if (tokens_ < 1.0)
            return false;
        tokens_ -= 1.0;
        return true;
    }

    double tokens() const { return tokens_; }
    double ratio() const { return ratio_; }

  private:
    double ratio_ = 0.0;
    double cap_ = 0.0;
    double tokens_ = 0.0;
};

} // namespace redeye

#endif // REDEYE_CORE_RETRY_HH
