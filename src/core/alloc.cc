#include "core/alloc.hh"

namespace redeye {
namespace alloc {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<bool> g_hooksLinked{false};

} // namespace alloc
} // namespace redeye
