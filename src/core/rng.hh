/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in the simulator draws from an explicit,
 * seeded Rng so that whole experiments are bit-reproducible. Rng
 * supports fork(), deriving an independent child stream, so modules
 * can be given private streams without coupling their consumption.
 */

#ifndef REDEYE_CORE_RNG_HH
#define REDEYE_CORE_RNG_HH

#include <cstdint>
#include <random>

namespace redeye {

/**
 * Seeded pseudo-random stream. Thin wrapper over std::mt19937_64 with
 * the distributions the simulator needs.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed for tests). */
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

    /** Derive an independent child stream from this one. */
    Rng
    fork()
    {
        return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo,
                                                           hi)(engine_);
    }

    /** Gaussian with the given mean and standard deviation. */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Poisson sample with the given mean (mean >= 0). */
    std::int64_t
    poisson(double mean)
    {
        if (mean <= 0.0)
            return 0;
        return std::poisson_distribution<std::int64_t>(mean)(engine_);
    }

    /** Bernoulli trial with success probability p. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    /** Raw 64-bit draw. */
    std::uint64_t raw() { return engine_(); }

    /** Underlying engine, for use with std distributions. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace redeye

#endif // REDEYE_CORE_RNG_HH
