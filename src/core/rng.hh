/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in the simulator draws from an explicit,
 * seeded Rng so that whole experiments are bit-reproducible. Rng
 * supports fork(), deriving an independent child stream, so modules
 * can be given private streams without coupling their consumption.
 *
 * ## Counter-based per-item streams
 *
 * Stochastic layers (Gaussian/quantization noise, the sensor
 * sampling model, dropout) do not draw from one sequential engine
 * across a batch. Instead each forward pass derives one independent
 * stream per batch item from a (seed, pass, item) counter triple:
 *
 *     stream(seed, pass, item) =
 *         Rng(splitmix64(seed ^ splitmix64(pass * kPassSalt + item)))
 *
 * where `seed` is the layer's private base seed, `pass` counts the
 * layer's noisy forward passes, and `item` is the batch index. The
 * scheme makes the realized noise
 *
 *  - independent of thread count and scheduling: item i's draws come
 *    from its own engine regardless of which worker runs it;
 *  - independent of batch partitioning order within a pass: draws for
 *    item i never consume state that item j produced;
 *  - fresh across passes: the pass counter advances per forward, so
 *    repeated evaluations of the same batch see new noise, exactly
 *    like the old sequential-engine behaviour.
 *
 * streamRng() below implements the derivation.
 */

#ifndef REDEYE_CORE_RNG_HH
#define REDEYE_CORE_RNG_HH

#include <cstdint>
#include <random>

namespace redeye {

/**
 * Seeded pseudo-random stream. Thin wrapper over std::mt19937_64 with
 * the distributions the simulator needs.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed for tests). */
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

    /** Derive an independent child stream from this one. */
    Rng
    fork()
    {
        return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo,
                                                           hi)(engine_);
    }

    /** Gaussian with the given mean and standard deviation. */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Poisson sample with the given mean (mean >= 0). */
    std::int64_t
    poisson(double mean)
    {
        if (mean <= 0.0)
            return 0;
        return std::poisson_distribution<std::int64_t>(mean)(engine_);
    }

    /** Bernoulli trial with success probability p. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    /** Raw 64-bit draw. */
    std::uint64_t raw() { return engine_(); }

    /** Underlying engine, for use with std distributions. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

/**
 * SplitMix64 finalizer: a bijective 64-bit mixer with full avalanche,
 * used to decorrelate counter-derived seeds.
 */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Salt separating pass counters from item indices in streamRng(). */
inline constexpr std::uint64_t kPassSalt = 0x2545f4914f6cdd1dULL;

/**
 * Counter-based per-item stream: an Rng that depends only on the
 * (seed, pass, item) triple. See the file comment for the scheme and
 * its determinism guarantees.
 */
inline Rng
streamRng(std::uint64_t seed, std::uint64_t pass, std::uint64_t item)
{
    return Rng(splitmix64(seed ^ splitmix64(pass * kPassSalt + item)));
}

} // namespace redeye

#endif // REDEYE_CORE_RNG_HH
