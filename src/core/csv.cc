#include "core/csv.hh"

#include <cstring>

#include "core/logging.hh"

namespace redeye {

std::string
stripCsvFlag(int &argc, char **argv)
{
    std::string path;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0) {
            fatal_if(i + 1 >= argc, "--csv needs a value");
            path = argv[++i];
            continue;
        }
        argv[kept++] = argv[i];
    }
    argc = kept;
    return path;
}

std::string
csvEscape(const std::string &cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

CsvWriter::CsvWriter(const std::string &path)
    : path_(path), os_(path)
{
    fatal_if(!os_, "cannot open '", path, "' for writing");
}

void
CsvWriter::writeLine(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << csvEscape(cells[i]);
    }
    os_ << '\n';
    fatal_if(!os_, "failed writing '", path_, "'");
}

void
CsvWriter::header(const std::vector<std::string> &columns)
{
    panic_if(headerWritten_, "CSV header already written");
    writeLine(columns);
    headerWritten_ = true;
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    writeLine(cells);
    ++rows_;
}

} // namespace redeye
