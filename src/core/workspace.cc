#include "core/workspace.hh"

#include <algorithm>
#include <cstring>

#include "core/logging.hh"

namespace redeye {

void
Arena::reserve(std::size_t bytes)
{
    if (bytes > capacity_)
        grow(bytes);
}

void
Arena::grow(std::size_t needed)
{
    // Geometric growth keeps the number of warmup reallocations
    // logarithmic in the eventual high-water mark.
    std::size_t cap = std::max<std::size_t>(capacity_ * 2, 4096);
    cap = std::max(cap, needed);
    auto next = std::make_unique<std::byte[]>(cap);
    if (used_ > 0)
        std::memcpy(next.get(), buffer_.get(), used_);
    buffer_ = std::move(next);
    capacity_ = cap;
    ++growths_;
}

void *
Arena::allocBytes(std::size_t bytes, std::size_t align)
{
    const std::size_t at = (used_ + align - 1) & ~(align - 1);
    if (at + bytes > capacity_)
        grow(at + bytes);
    used_ = at + bytes;
    highWater_ = std::max(highWater_, used_);
    return buffer_.get() + at;
}

float *
Arena::floats(std::size_t count, float fill)
{
    float *out = alloc<float>(count);
    if (fill == 0.0f)
        std::memset(out, 0, count * sizeof(float));
    else
        std::fill(out, out + count, fill);
    return out;
}

Workspace::Workspace(std::size_t lanes)
{
    fatal_if(lanes == 0, "workspace needs at least one lane");
    arenas_.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i)
        arenas_.push_back(std::make_unique<Arena>());
}

Arena &
Workspace::arena(std::size_t lane)
{
    // Growing the lane vector here would race with concurrent chunks;
    // size the workspace for the context it serves instead.
    panic_if(lane >= arenas_.size(), "workspace has ",
             arenas_.size(), " lanes, lane ", lane,
             " requested; construct it with the context's thread "
             "count");
    return *arenas_[lane];
}

std::size_t
Workspace::totalCapacity() const
{
    std::size_t total = 0;
    for (const auto &a : arenas_)
        total += a->capacity();
    return total;
}

std::size_t
Workspace::totalGrowths() const
{
    std::size_t total = 0;
    for (const auto &a : arenas_)
        total += a->growths();
    return total;
}

void
Workspace::resetAll()
{
    for (auto &a : arenas_)
        a->reset();
}

} // namespace redeye
