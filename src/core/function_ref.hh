/**
 * @file
 * FunctionRef: a non-owning, non-allocating callable reference.
 *
 * std::function type-erases by *owning* a copy of the callable, which
 * heap-allocates whenever the captures exceed the small-buffer
 * optimization — a per-call malloc on every parallelFor() lambda with
 * more than two captured references. FunctionRef erases the type with
 * two words (object pointer + trampoline) and never allocates, at the
 * price of not owning: the referenced callable must outlive the call.
 *
 * That contract matches exactly how the execution substrate uses
 * callables — parallelFor()/ThreadPool::run() invoke the functor
 * synchronously and never store it past the call — so every hot-path
 * signature takes FunctionRef. Lambdas, function pointers and
 * std::function lvalues all convert implicitly.
 */

#ifndef REDEYE_CORE_FUNCTION_REF_HH
#define REDEYE_CORE_FUNCTION_REF_HH

#include <type_traits>
#include <utility>

namespace redeye {

template <typename Signature>
class FunctionRef;

/** Non-owning reference to a callable with signature R(Args...). */
template <typename R, typename... Args>
class FunctionRef<R(Args...)>
{
  public:
    FunctionRef() = default;

    /**
     * Bind any callable. The callable is captured by reference: it
     * must stay alive for as long as the FunctionRef is invoked
     * (binding a temporary as a function argument is fine — the
     * temporary outlives the full expression).
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                  std::is_invocable_r_v<R, F &, Args...>>>
    FunctionRef(F &&fn) // NOLINT: implicit by design
        : obj_(const_cast<void *>(
              static_cast<const void *>(std::addressof(fn)))),
          call_([](void *obj, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F> *>(obj))(
                  std::forward<Args>(args)...);
          })
    {
    }

    /** True when a callable is bound. */
    explicit operator bool() const { return call_ != nullptr; }

    R
    operator()(Args... args) const
    {
        return call_(obj_, std::forward<Args>(args)...);
    }

  private:
    void *obj_ = nullptr;
    R (*call_)(void *, Args...) = nullptr;
};

} // namespace redeye

#endif // REDEYE_CORE_FUNCTION_REF_HH
