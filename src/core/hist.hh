/**
 * @file
 * Mergeable log-bucketed histogram for fleet-scale latency metrics.
 *
 * Serving thousands of concurrent streams rules out the exact
 * percentile path (core/stats.hh keeps every sample); LogHistogram
 * instead folds samples into geometrically spaced buckets — constant
 * memory per stream — and two histograms with the same layout merge
 * by adding bucket counts. That makes per-session, per-class and
 * fleet-wide p50/p95/p99 all computable from the same accumulators:
 * aggregate views are merges of the per-session ones, never a second
 * pass over raw samples.
 *
 * Buckets subdivide each octave (factor of 2) of [lo, hi) evenly in
 * log space, so the relative quantization error of a reconstructed
 * percentile is bounded by 2^(1/bucketsPerOctave) - 1 (about 9% at
 * the default 8 buckets per octave) regardless of the sample's
 * magnitude. Samples below `lo` land in a dedicated underflow
 * bucket, samples at or above `hi` in an overflow bucket; exact min,
 * max, count and sum are tracked alongside, so the mean is exact and
 * extreme percentiles clamp to observed extrema.
 */

#ifndef REDEYE_CORE_HIST_HH
#define REDEYE_CORE_HIST_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace redeye {

/** Mergeable histogram over geometric buckets of [lo, hi). */
class LogHistogram
{
  public:
    /**
     * @param lo Smallest resolvable value (> 0); lower bound of the
     * first regular bucket.
     * @param hi Upper edge of the last regular bucket (> lo).
     * @param buckets_per_octave Subdivisions of each factor-of-2 span
     * (>= 1); higher = finer percentile resolution.
     */
    LogHistogram(double lo, double hi,
                 unsigned buckets_per_octave = 8);

    /** Fold one sample (any finite value; negatives underflow). */
    void add(double x);

    /**
     * Fold @p other into this histogram. Both must share the exact
     * (lo, hi, buckets_per_octave) layout — merging differently
     * shaped histograms is a logic error and fatal.
     */
    void merge(const LogHistogram &other);

    /** True when @p other has the same bucket layout. */
    bool mergeableWith(const LogHistogram &other) const;

    /**
     * Approximate p-th percentile (p in [0, 100]) reconstructed from
     * the bucket counts: the bucket straddling the target rank is
     * interpolated geometrically, and the result is clamped into the
     * exact [min, max] observed. Fatal when empty.
     */
    double percentile(double p) const;

    /**
     * percentile() that tolerates an empty histogram: returns
     * @p fallback instead of fataling when no samples were folded.
     * The serving-report path uses this for QoS classes that
     * completed zero frames under total shed — a legitimate outcome
     * of an overload sweep, not an internal error.
     */
    double percentileOr(double p, double fallback = 0.0) const;

    /** Samples folded so far. */
    std::uint64_t count() const { return count_; }

    /** Exact arithmetic mean (0 when empty). */
    double mean() const;

    /** Exact smallest sample (+inf when empty). */
    double min() const { return min_; }

    /** Exact largest sample (-inf when empty). */
    double max() const { return max_; }

    /** Reset to the empty state (layout preserved). */
    void reset();

    /** Total buckets, including underflow and overflow. */
    std::size_t buckets() const { return counts_.size(); }

    /** Count in bucket @p i. */
    std::uint64_t bucketCount(std::size_t i) const;

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    unsigned bucketsPerOctave() const { return perOctave_; }

  private:
    std::size_t bucketOf(double x) const;

    /** Lower edge of regular bucket @p i (1-based, see bucketOf). */
    double bucketLo(std::size_t i) const;

    double lo_ = 0.0;
    double hi_ = 0.0;
    unsigned perOctave_ = 0;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace redeye

#endif // REDEYE_CORE_HIST_HH
