/**
 * @file
 * Bounded multi-class queue with weighted-fair dequeue and per-class
 * admission accounting.
 *
 * The fleet runtime (src/fleet) admits frames from many sessions into
 * one shared queue in front of the device pool; classes (traffic
 * priorities) share the bound unequally. ClassedQueue supplies the
 * three mechanisms that make oversubscription degrade gracefully:
 *
 *  - **Per-class occupancy caps**: class c may hold at most
 *    `maxSlots` items even when the queue has room, so a flood of
 *    best-effort traffic cannot monopolize the bound.
 *  - **Priority eviction**: when the queue is full, a push from a
 *    higher-priority class (lower index) evicts the oldest item of
 *    the lowest-priority class holding more than its `reserved`
 *    guarantee. Load shedding therefore consumes best-effort slots
 *    first while every class keeps its reserved floor.
 *  - **Weighted deficit round robin dequeue**: popWeighted() serves
 *    classes in proportion to their weights (when all are backlogged,
 *    class c receives weight_c / sum(weights) of the service), and is
 *    work-conserving — an idle class's share is redistributed.
 *
 * Storage is one preallocated ring per class (each sized to the full
 * bound, since a lone class may occupy the entire queue), so
 * steady-state operation performs no heap allocation. All operations
 * are thread-safe; per-class counters (pushed, rejected, evicted,
 * popped, high water) are the accounting the fleet report surfaces.
 */

#ifndef REDEYE_CORE_CLASSED_QUEUE_HH
#define REDEYE_CORE_CLASSED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/logging.hh"

namespace redeye {

/** Outcome of a classed push attempt. */
enum class ClassedPush {
    Admitted,         ///< item enqueued (possibly after an eviction)
    RejectedClassCap, ///< class at its maxSlots occupancy cap
    RejectedFull,     ///< queue full, no evictable lower class
    Closed,           ///< queue already closed
};

/** Admission parameters of one traffic class. */
struct ClassedQueueClass {
    /** DRR service weight (>= 1). */
    unsigned weight = 1;

    /** Slots this class keeps even under higher-priority eviction. */
    std::size_t reserved = 0;

    /** Occupancy cap (may exceed capacity = effectively unlimited). */
    std::size_t maxSlots = std::numeric_limits<std::size_t>::max();
};

/** Bounded multi-class MPMC queue; class 0 is the highest priority. */
template <typename T>
class ClassedQueue
{
  public:
    /** Per-class admission/eviction/service counters. */
    struct Counters {
        std::uint64_t pushed = 0;   ///< admitted items
        std::uint64_t rejected = 0; ///< cap or full rejections
        std::uint64_t evicted = 0;  ///< shed to admit a higher class
        std::uint64_t popped = 0;   ///< served items
        std::size_t highWater = 0;  ///< peak class occupancy
    };

    /**
     * @param capacity Total queued items across classes (>= 1).
     * @param classes Per-class parameters, highest priority first.
     */
    ClassedQueue(std::size_t capacity,
                 std::vector<ClassedQueueClass> classes)
        : capacity_(capacity), classes_(std::move(classes))
    {
        fatal_if(capacity_ == 0, "queue capacity must be positive");
        fatal_if(classes_.empty(), "queue needs at least one class");
        for (const ClassedQueueClass &c : classes_)
            fatal_if(c.weight == 0, "class weight must be >= 1");
        rings_.resize(classes_.size());
        for (Ring &r : rings_)
            r.slots.resize(capacity_);
        counters_.resize(classes_.size());
        deficits_.assign(classes_.size(), 0.0);
    }

    ClassedQueue(const ClassedQueue &) = delete;
    ClassedQueue &operator=(const ClassedQueue &) = delete;

    /**
     * Admit @p item into class @p cls without blocking. When the
     * queue is full the push may evict the oldest item of the lowest
     * priority class exceeding its reservation; the victim (and its
     * class) are returned through @p evicted / @p evicted_class for
     * the caller to account. On any rejection @p item is left
     * unmoved.
     */
    ClassedPush
    push(std::size_t cls, T &&item, std::optional<T> *evicted = nullptr,
         std::size_t *evicted_class = nullptr)
    {
        if (evicted)
            evicted->reset();
        std::unique_lock<std::mutex> lock(mutex_);
        panic_if(cls >= classes_.size(), "class index out of range");
        if (closed_)
            return ClassedPush::Closed;
        if (rings_[cls].count >= classes_[cls].maxSlots) {
            ++counters_[cls].rejected;
            return ClassedPush::RejectedClassCap;
        }
        if (total_ >= capacity_) {
            // Shed from the lowest-priority class that is strictly
            // below the pusher and above its reserved floor.
            std::size_t victim = classes_.size();
            for (std::size_t v = classes_.size(); v-- > cls + 1;) {
                if (rings_[v].count > classes_[v].reserved) {
                    victim = v;
                    break;
                }
            }
            if (victim == classes_.size()) {
                ++counters_[cls].rejected;
                return ClassedPush::RejectedFull;
            }
            T old = dequeueClass(victim);
            ++counters_[victim].evicted;
            if (evicted)
                evicted->emplace(std::move(old));
            if (evicted_class)
                *evicted_class = victim;
        }
        enqueueClass(cls, std::move(item));
        lock.unlock();
        notEmpty_.notify_one();
        return ClassedPush::Admitted;
    }

    /**
     * Dequeue under weighted deficit round robin, blocking while the
     * queue is empty and not closed. Returns false once closed and
     * drained. @p cls receives the served item's class.
     */
    bool
    popWeighted(T &out, std::size_t &cls)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait(lock, [&] { return closed_ || total_ > 0; });
        if (total_ == 0)
            return false;
        serveLocked(out, cls);
        return true;
    }

    /** Non-blocking popWeighted(); false when currently empty. */
    bool
    tryPopWeighted(T &out, std::size_t &cls)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (total_ == 0)
            return false;
        serveLocked(out, cls);
        return true;
    }

    /** Close: pushes fail, blocked poppers wake and drain. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notEmpty_.notify_all();
    }

    /** Items queued across all classes. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return total_;
    }

    /** Items queued in class @p cls. */
    std::size_t
    size(std::size_t cls) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        panic_if(cls >= rings_.size(), "class index out of range");
        return rings_[cls].count;
    }

    /** Accounting snapshot of class @p cls. */
    Counters
    counters(std::size_t cls) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        panic_if(cls >= counters_.size(), "class index out of range");
        return counters_[cls];
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t classCount() const { return classes_.size(); }

  private:
    struct Ring {
        std::vector<T> slots;
        std::size_t head = 0;
        std::size_t count = 0;
    };

    void
    enqueueClass(std::size_t cls, T &&item)
    {
        Ring &r = rings_[cls];
        r.slots[(r.head + r.count) % r.slots.size()] = std::move(item);
        ++r.count;
        ++total_;
        ++counters_[cls].pushed;
        counters_[cls].highWater =
            std::max(counters_[cls].highWater, r.count);
    }

    T
    dequeueClass(std::size_t cls)
    {
        Ring &r = rings_[cls];
        T item = std::move(r.slots[r.head]);
        r.head = (r.head + 1) % r.slots.size();
        --r.count;
        --total_;
        return item;
    }

    /**
     * Serve one item under DRR (caller holds the lock, total_ > 0).
     * Classes spend accumulated deficit one unit per item; when no
     * backlogged class has credit, every backlogged class is
     * replenished by its weight (idle classes reset to zero, which is
     * what makes the scheduler work-conserving).
     */
    void
    serveLocked(T &out, std::size_t &cls)
    {
        for (;;) {
            for (std::size_t k = 0; k < classes_.size(); ++k) {
                const std::size_t c =
                    (cursor_ + k) % classes_.size();
                if (rings_[c].count == 0)
                    continue;
                if (deficits_[c] < 1.0)
                    continue;
                deficits_[c] -= 1.0;
                cursor_ = c;
                out = dequeueClass(c);
                ++counters_[c].popped;
                cls = c;
                notFullMaybeNotify();
                return;
            }
            for (std::size_t c = 0; c < classes_.size(); ++c) {
                deficits_[c] =
                    rings_[c].count
                        ? deficits_[c] + classes_[c].weight
                        : 0.0;
            }
        }
    }

    /** Hook kept for symmetry; admission never blocks on Full. */
    void notFullMaybeNotify() {}

    const std::size_t capacity_;
    std::vector<ClassedQueueClass> classes_;
    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::vector<Ring> rings_;
    std::vector<Counters> counters_;
    std::vector<double> deficits_;
    std::size_t cursor_ = 0;
    std::size_t total_ = 0;
    bool closed_ = false;
};

} // namespace redeye

#endif // REDEYE_CORE_CLASSED_QUEUE_HH
