/**
 * @file
 * ASCII table formatting for bench/experiment reports.
 *
 * Benches reproduce the paper's tables and figure series; TablePrinter
 * renders aligned, titled tables to any std::ostream so outputs read
 * like the paper's rows.
 */

#ifndef REDEYE_CORE_TABLE_HH
#define REDEYE_CORE_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace redeye {

/** Accumulates rows of string cells and prints an aligned table. */
class TablePrinter
{
  public:
    /** @param title Optional heading printed above the table. */
    explicit TablePrinter(std::string title = "");

    /** Set the column headers (defines column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the table. */
    void print(std::ostream &os) const;

    /** Number of data rows so far. */
    std::size_t rows() const { return rows_.size(); }

  private:
    struct Row {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::string title_;
    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

/** Format a double with fixed precision. */
std::string fmt(double value, int precision = 3);

/** Format a percentage (0.845 -> "84.5%"). */
std::string fmtPercent(double fraction, int precision = 1);

} // namespace redeye

#endif // REDEYE_CORE_TABLE_HH
