#include "core/exec.hh"

#include <cstdlib>

#include "core/logging.hh"

namespace redeye {

namespace {

/** Pool whose chunk the current thread is executing, if any. */
thread_local const ThreadPool *t_executing_pool = nullptr;

} // namespace

ThreadPool::ThreadPool(std::size_t threads) : threads_(threads)
{
    fatal_if(threads_ == 0, "thread pool needs at least one thread");
    workers_.reserve(threads_ - 1);
    for (std::size_t i = 0; i + 1 < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::insideWorker()
{
    return t_executing_pool != nullptr;
}

const ThreadPool *
ThreadPool::executingPool()
{
    return t_executing_pool;
}

void
ThreadPool::executeChunks(std::unique_lock<std::mutex> &lock)
{
    // Pull chunks until the current generation's supply is exhausted.
    // Called with the lock held; releases it around user code.
    while (nextChunk_ < chunkCount_) {
        const std::size_t chunk = nextChunk_++;
        const auto fn = fn_;
        lock.unlock();
        // Save/restore so a chunk that runs another pool's loop (and
        // executes some of its chunks on this thread) is still seen
        // as "inside" this pool once that loop returns.
        const ThreadPool *enclosing = t_executing_pool;
        t_executing_pool = this;
        try {
            fn(chunk);
        } catch (...) {
            t_executing_pool = enclosing;
            lock.lock();
            if (!error_)
                error_ = std::current_exception();
            if (--pending_ == 0)
                done_.notify_all();
            continue;
        }
        t_executing_pool = enclosing;
        lock.lock();
        if (--pending_ == 0)
            done_.notify_all();
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock,
                   [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        executeChunks(lock);
    }
}

void
ThreadPool::run(std::size_t chunks, FunctionRef<void(std::size_t)> fn)
{
    if (chunks == 0)
        return;
    if (threads_ == 1 || chunks == 1 || executingPool() == this) {
        // Serial pool, single chunk, or a nested run() from inside
        // one of this pool's own chunks: execute inline. A run()
        // issued from a *different* pool's chunk dispatches normally
        // (the two pools' workers are disjoint, so there is no
        // deadlock), which lets nested runtimes compose.
        for (std::size_t c = 0; c < chunks; ++c)
            fn(c);
        return;
    }

    std::unique_lock<std::mutex> lock(mutex_);
    panic_if(pending_ != 0, "ThreadPool::run() is not reentrant "
                            "across external threads");
    fn_ = fn;
    chunkCount_ = chunks;
    nextChunk_ = 0;
    pending_ = chunks;
    error_ = nullptr;
    ++generation_;
    wake_.notify_all();

    // The caller works too.
    executeChunks(lock);
    done_.wait(lock, [&] { return pending_ == 0; });
    fn_ = FunctionRef<void(std::size_t)>();
    chunkCount_ = 0;

    if (error_) {
        std::exception_ptr err = error_;
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

ExecContext &
ExecContext::serial()
{
    static ExecContext ctx;
    return ctx;
}

void
parallelForChunks(
    ExecContext &ctx, std::size_t n,
    FunctionRef<void(std::size_t, std::size_t, std::size_t)> fn)
{
    if (n == 0)
        return;
    ThreadPool *pool = ctx.pool();
    const std::size_t threads = ctx.threads();
    if (!pool || threads == 1 || n == 1) {
        fn(0, n, 0);
        return;
    }
    const std::size_t chunks = std::min(threads, n);
    pool->run(chunks, [&](std::size_t c) {
        const std::size_t begin = n * c / chunks;
        const std::size_t end = n * (c + 1) / chunks;
        fn(begin, end, c);
    });
}

void
parallelFor(ExecContext &ctx, std::size_t n,
            FunctionRef<void(std::size_t)> fn)
{
    parallelForChunks(ctx, n,
                      [&](std::size_t begin, std::size_t end,
                          std::size_t chunk) {
                          (void)chunk;
                          for (std::size_t i = begin; i < end; ++i)
                              fn(i);
                      });
}

std::size_t
defaultThreadCount()
{
    if (const char *env = std::getenv("REDEYE_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t
resolveThreadCount(std::size_t requested)
{
    return requested == 0 ? defaultThreadCount() : requested;
}

} // namespace redeye
