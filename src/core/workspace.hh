/**
 * @file
 * Workspace: per-worker scratch memory for the steady-state hot path.
 *
 * RedEye's continuous-vision premise makes steady-state per-frame
 * cost — not first-frame cost — the figure of merit: the pipeline
 * runs on every frame, forever. A Workspace gives each worker a set
 * of bump arenas (one per ExecContext lane, so parallel chunks never
 * contend) from which layers draw transient scratch — im2col
 * columns, per-chunk gradient accumulators, col2im staging — instead
 * of constructing std::vector locals per call.
 *
 * ## Lifecycle and ownership
 *
 * A Workspace is owned by exactly one worker (a pipeline stage
 * worker, an evaluator, a training loop) and attached to that
 * worker's ExecContext (ExecContext::setWorkspace). Arena memory is
 * *recycled, never returned*: an ArenaScope rewinds the bump pointer
 * on destruction, so the bytes a layer used are handed to the next
 * layer without touching the allocator. Capacity only grows — each
 * arena doubles to fit its high-water mark — so after a few warmup
 * frames every frame is served without a single heap allocation
 * (asserted by tests/stream/steady_state_alloc_test.cc under the
 * counting allocator in core/alloc.hh).
 *
 * ## Rules
 *
 *  - Arena spans are valid only inside the enclosing ArenaScope;
 *    never store one across layer calls (persistent state — dropout
 *    masks, activation plans — belongs in layer/network members).
 *  - A lane's arena may only be used by the chunk running on that
 *    lane; parallelForChunks hands every chunk a distinct lane index.
 *  - Growth invalidates spans handed out earlier in the same scope,
 *    so take all spans for a computation before writing to any of
 *    them, or reserve() the lane up front.
 */

#ifndef REDEYE_CORE_WORKSPACE_HH
#define REDEYE_CORE_WORKSPACE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace redeye {

/**
 * A bump allocator over one contiguous, geometrically grown buffer.
 * alloc() carves aligned spans; ArenaScope rewinds in LIFO order.
 */
class Arena
{
  public:
    Arena() = default;

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Ensure capacity for @p bytes without changing the cursor. */
    void reserve(std::size_t bytes);

    /**
     * Carve @p count elements of T (suitably aligned) from the
     * arena. Grows the backing buffer when the cursor would pass
     * capacity — a warmup-only event in steady state. The span is
     * valid until the enclosing scope unwinds; growing invalidates
     * spans carved earlier in the same scope.
     */
    template <typename T>
    T *
    alloc(std::size_t count)
    {
        return static_cast<T *>(
            allocBytes(count * sizeof(T), alignof(T)));
    }

    /** Like alloc<float>, zero-filled (the common scratch pattern). */
    float *floats(std::size_t count, float fill = 0.0f);

    /** Bytes currently in use (the bump cursor). */
    std::size_t used() const { return used_; }

    /** Bytes the backing buffer holds. */
    std::size_t capacity() const { return capacity_; }

    /** Largest cursor ever observed. */
    std::size_t highWater() const { return highWater_; }

    /** Times the backing buffer had to grow (warmup indicator). */
    std::size_t growths() const { return growths_; }

    /** Rewind the cursor to zero. Capacity is retained. */
    void reset() { used_ = 0; }

  private:
    friend class ArenaScope;

    void *allocBytes(std::size_t bytes, std::size_t align);
    void grow(std::size_t needed);

    std::unique_ptr<std::byte[]> buffer_;
    std::size_t capacity_ = 0;
    std::size_t used_ = 0;
    std::size_t highWater_ = 0;
    std::size_t growths_ = 0;
};

/**
 * RAII rewind: restores the arena cursor to its value at
 * construction, returning everything allocated inside the scope.
 * Scopes nest in strict LIFO order.
 */
class ArenaScope
{
  public:
    explicit ArenaScope(Arena &arena)
        : arena_(arena), mark_(arena.used_)
    {
    }

    ~ArenaScope() { arena_.used_ = mark_; }

    ArenaScope(const ArenaScope &) = delete;
    ArenaScope &operator=(const ArenaScope &) = delete;

  private:
    Arena &arena_;
    std::size_t mark_;
};

/**
 * Per-worker scratch: one Arena per execution lane. Lane l serves
 * the chunk that parallelForChunks() runs with chunk index l, so
 * concurrent chunks bump disjoint arenas without synchronization.
 */
class Workspace
{
  public:
    /** @param lanes Concurrency this workspace must serve (>= 1). */
    explicit Workspace(std::size_t lanes = 1);

    Workspace(const Workspace &) = delete;
    Workspace &operator=(const Workspace &) = delete;

    /** Number of lanes. */
    std::size_t lanes() const { return arenas_.size(); }

    /**
     * Arena of lane @p lane. Panics when @p lane is out of range:
     * construct the workspace with the serving context's thread
     * count (growing the lane vector here would race with
     * concurrent chunks).
     */
    Arena &arena(std::size_t lane);

    /** Sum of all lanes' capacities, in bytes. */
    std::size_t totalCapacity() const;

    /** Sum of all lanes' growth events. */
    std::size_t totalGrowths() const;

    /** Rewind every lane. */
    void resetAll();

  private:
    std::vector<std::unique_ptr<Arena>> arenas_;
};

} // namespace redeye

#endif // REDEYE_CORE_WORKSPACE_HH
