/**
 * @file
 * Typed error reporting: Status and StatusOr.
 *
 * The simulator historically reported every user error through
 * fatal(), which exits the process — acceptable for a batch
 * experiment, wrong for a serving runtime that must keep answering
 * when one request is malformed or one frame fails. Status carries a
 * machine-readable code plus a human-readable message; StatusOr<T>
 * is either a value or a non-OK Status. Fallible entry points
 * (the RedEye compiler, RedEyeDevice::tryRun, StreamRunner::tryRun)
 * return these; the legacy fatal()-on-error wrappers remain for
 * batch tools and tests.
 *
 * Conventions (DESIGN.md §8):
 *  - InvalidArgument    caller passed a malformed program/config
 *  - FailedPrecondition object state forbids the call (e.g. run()
 *                       called twice)
 *  - DeadlineExceeded   a watchdog timeout expired
 *  - Internal           a simulator bug surfaced as an exception
 *  - Unavailable        hardware degraded past the point of service
 */

#ifndef REDEYE_CORE_STATUS_HH
#define REDEYE_CORE_STATUS_HH

#include <optional>
#include <string>
#include <utility>

#include "core/logging.hh"

namespace redeye {

/** Machine-readable error category. */
enum class StatusCode {
    Ok,
    InvalidArgument,
    FailedPrecondition,
    DeadlineExceeded,
    ResourceExhausted,
    Unavailable,
    Internal,
};

/** Canonical name of a status code (e.g. "INVALID_ARGUMENT"). */
const char *statusCodeName(StatusCode code);

/** A result code plus a human-readable message. */
class Status
{
  public:
    /** Default: OK. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status
    invalidArgument(std::string msg)
    {
        return Status(StatusCode::InvalidArgument, std::move(msg));
    }

    static Status
    failedPrecondition(std::string msg)
    {
        return Status(StatusCode::FailedPrecondition, std::move(msg));
    }

    static Status
    deadlineExceeded(std::string msg)
    {
        return Status(StatusCode::DeadlineExceeded, std::move(msg));
    }

    static Status
    resourceExhausted(std::string msg)
    {
        return Status(StatusCode::ResourceExhausted, std::move(msg));
    }

    static Status
    unavailable(std::string msg)
    {
        return Status(StatusCode::Unavailable, std::move(msg));
    }

    static Status
    internal(std::string msg)
    {
        return Status(StatusCode::Internal, std::move(msg));
    }

    bool ok() const { return code_ == StatusCode::Ok; }

    StatusCode code() const { return code_; }

    const std::string &message() const { return message_; }

    /** "CODE: message" (or "OK"). */
    std::string str() const;

    bool
    operator==(const Status &other) const
    {
        return code_ == other.code_ && message_ == other.message_;
    }

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/**
 * Either a value of type T or a non-OK Status explaining why there
 * is no value. Accessing value() on an error is a panic (an internal
 * bug: the caller skipped the ok() check).
 */
template <typename T>
class StatusOr
{
  public:
    /** Construct from an error (must not be OK). */
    StatusOr(Status status) : status_(std::move(status))
    {
        panic_if(status_.ok(),
                 "StatusOr built from an OK status without a value");
    }

    /** Construct from a value. */
    StatusOr(T value) : value_(std::move(value)) {}

    bool ok() const { return status_.ok(); }

    const Status &status() const { return status_; }

    T &
    value()
    {
        panic_if(!ok(), "StatusOr::value() on error: ", status_.str());
        return *value_;
    }

    const T &
    value() const
    {
        panic_if(!ok(), "StatusOr::value() on error: ", status_.str());
        return *value_;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }

    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace redeye

/**
 * Propagate a non-OK Status to the caller:
 * RETURN_IF_ERROR(validate(x)); continues on OK.
 */
#define RETURN_IF_ERROR(expr)                                              \
    do {                                                                   \
        ::redeye::Status status_macro_ = (expr);                           \
        if (!status_macro_.ok())                                           \
            return status_macro_;                                          \
    } while (0)

#endif // REDEYE_CORE_STATUS_HH
