/**
 * @file
 * Physical unit helpers.
 *
 * Quantities are plain doubles in base SI units (joule, second, farad,
 * volt, watt, hertz, metre, byte). The helpers here provide named
 * scale constants and SI-prefixed pretty printing so that benches can
 * report "1.4 mJ" rather than "0.0014".
 */

#ifndef REDEYE_CORE_UNITS_HH
#define REDEYE_CORE_UNITS_HH

#include <string>

namespace redeye {
namespace units {

// Scale constants; multiply to convert into base SI units.
constexpr double femto = 1e-15;
constexpr double pico = 1e-12;
constexpr double nano = 1e-9;
constexpr double micro = 1e-6;
constexpr double milli = 1e-3;
constexpr double kilo = 1e3;
constexpr double mega = 1e6;
constexpr double giga = 1e9;

// Common sensor-domain quantities.
constexpr double fF = femto;     ///< femtofarad in farads
constexpr double pF = pico;      ///< picofarad in farads
constexpr double uJ = micro;     ///< microjoule in joules
constexpr double mJ = milli;     ///< millijoule in joules
constexpr double mW = milli;     ///< milliwatt in watts
constexpr double us = micro;     ///< microsecond in seconds
constexpr double ms = milli;     ///< millisecond in seconds
constexpr double MHz = mega;     ///< megahertz in hertz
constexpr double kB = 1024.0;    ///< kibibyte in bytes

/** Boltzmann constant [J/K]. */
constexpr double kBoltzmann = 1.380649e-23;

/** Default simulation temperature [K] (27 C, the TT corner). */
constexpr double roomTemperature = 300.15;

/**
 * Format a value with an SI prefix and unit suffix, e.g.
 * siFormat(1.4e-3, "J") == "1.400 mJ".
 */
std::string siFormat(double value, const std::string &unit,
                     int precision = 3);

/** Convert a power ratio to decibels: 10*log10(ratio). */
double powerDb(double ratio);

/** Convert decibels to a power ratio: 10^(db/10). */
double dbToPowerRatio(double db);

/** Convert an amplitude ratio to decibels: 20*log10(ratio). */
double amplitudeDb(double ratio);

/** Convert decibels to an amplitude ratio: 10^(db/20). */
double dbToAmplitudeRatio(double db);

} // namespace units
} // namespace redeye

#endif // REDEYE_CORE_UNITS_HH
