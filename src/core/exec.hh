/**
 * @file
 * Execution context: pooled parallelism for the ConvNet + simulation
 * stack.
 *
 * Every hot path in the framework (layer batch loops, the noise
 * sweeps, the evaluator) is expressed as an index-parallel loop over
 * independent work items. ExecContext carries the runtime resources
 * those loops need — a ThreadPool handle and optional per-layer
 * timing hooks — and parallelFor() runs a loop either inline (serial
 * context) or across the pool with static contiguous chunking.
 *
 * Determinism contract:
 *  - forward passes are bit-identical at any thread count: each work
 *    item writes a disjoint output range and stochastic layers derive
 *    per-item counter-based RNG streams (see core/rng.hh), so neither
 *    scheduling order nor chunk boundaries can change results;
 *  - backward passes reduce per-chunk parameter-gradient scratch in
 *    chunk order, which is deterministic for a fixed thread count
 *    (floating-point accumulation order depends on the chunking).
 */

#ifndef REDEYE_CORE_EXEC_HH
#define REDEYE_CORE_EXEC_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/function_ref.hh"

namespace redeye {

class Workspace;

/**
 * Fixed-size pool of worker threads executing chunked index ranges.
 *
 * A pool constructed with `threads` provides `threads`-way
 * concurrency: `threads - 1` persistent workers plus the calling
 * thread, which participates in chunk execution while it waits.
 * run() is blocking and must not be invoked concurrently from
 * multiple external threads; a nested run() issued from inside a
 * chunk executes inline (serially) instead of deadlocking.
 */
class ThreadPool
{
  public:
    /** @param threads Total concurrency (>= 1). */
    explicit ThreadPool(std::size_t threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (workers + caller). */
    std::size_t threads() const { return threads_; }

    /**
     * Execute @p fn(chunk) for every chunk in [0, chunks). Blocks
     * until all chunks finish. The first exception thrown by any
     * chunk is rethrown here after the loop completes. @p fn is a
     * non-owning reference (core/function_ref.hh): dispatch never
     * heap-allocates, which the zero-allocation steady-state
     * invariant of the serving path depends on.
     */
    void run(std::size_t chunks, FunctionRef<void(std::size_t)> fn);

    /** True when the calling thread is executing a chunk of any pool. */
    static bool insideWorker();

    /**
     * Pool whose chunk the calling thread is currently executing, or
     * nullptr. A nested run() targeting the *same* pool executes
     * inline (its workers may all be busy on the enclosing loop), but
     * a run() targeting a *different* pool dispatches normally — this
     * is what lets a pipeline-stage worker (a chunk of the runner's
     * pool) fan a frame's GEMMs out across its own private pool.
     */
    static const ThreadPool *executingPool();

  private:
    void workerLoop();
    void executeChunks(std::unique_lock<std::mutex> &lock);

    std::size_t threads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    FunctionRef<void(std::size_t)> fn_;
    std::size_t chunkCount_ = 0;
    std::size_t nextChunk_ = 0;
    std::size_t pending_ = 0;
    std::uint64_t generation_ = 0;
    std::exception_ptr error_;
    bool stop_ = false;
};

/**
 * Runtime context threaded through Network/Layer forward and
 * backward. A default-constructed context is serial; attach a
 * ThreadPool for parallel execution. The context does not own the
 * pool.
 */
class ExecContext
{
  public:
    /** Hook invoked after each layer: (layer name, seconds). */
    using LayerTimer =
        std::function<void(const std::string &, double)>;

    /** Serial context (no pool, no timing). */
    ExecContext() = default;

    /** Context executing on @p pool. */
    explicit ExecContext(ThreadPool &pool) : pool_(&pool) {}

    /** Attached pool, or nullptr when serial. */
    ThreadPool *pool() const { return pool_; }

    /** Effective concurrency (1 when serial). */
    std::size_t
    threads() const
    {
        return pool_ ? pool_->threads() : 1;
    }

    /**
     * Install a per-layer timing hook; Network::forward/backward
     * invoke it once per layer. Pass nullptr to clear.
     */
    void setLayerTimer(LayerTimer timer) { timer_ = std::move(timer); }

    const LayerTimer &layerTimer() const { return timer_; }

    /**
     * Attach a Workspace whose per-lane arenas layers may use for
     * scratch instead of heap allocation. The workspace must outlive
     * the context and provide at least threads() lanes (lane `chunk`
     * from parallelForChunks indexes into it). Pass nullptr to
     * detach; layers fall back to local allocation.
     */
    void setWorkspace(Workspace *ws) { workspace_ = ws; }

    /** Attached workspace, or nullptr (layers allocate locally). */
    Workspace *workspace() const { return workspace_; }

    /**
     * Process-wide serial context, used by the compatibility
     * overloads that omit the context argument. Do not install a
     * timer or workspace on it.
     */
    static ExecContext &serial();

  private:
    ThreadPool *pool_ = nullptr;
    Workspace *workspace_ = nullptr;
    LayerTimer timer_;
};

/**
 * Run @p fn(begin, end, chunk) over a static contiguous partition of
 * [0, n) into min(ctx.threads(), n) chunks. Chunk boundaries depend
 * only on n and the thread count, never on scheduling, so loops whose
 * chunks write disjoint state are deterministic. @p chunk indexes
 * per-chunk scratch (always < ctx.threads()).
 */
void parallelForChunks(
    ExecContext &ctx, std::size_t n,
    FunctionRef<void(std::size_t, std::size_t, std::size_t)> fn);

/**
 * Run @p fn(i) for every i in [0, n), potentially in parallel.
 * Iterations must be independent.
 */
void parallelFor(ExecContext &ctx, std::size_t n,
                 FunctionRef<void(std::size_t)> fn);

/**
 * Thread count selected by the environment: REDEYE_THREADS when set
 * to a positive integer, otherwise std::thread::hardware_concurrency
 * (at least 1).
 */
std::size_t defaultThreadCount();

/** Map a user-facing thread knob: 0 = defaultThreadCount(), else n. */
std::size_t resolveThreadCount(std::size_t requested);

} // namespace redeye

#endif // REDEYE_CORE_EXEC_HH
