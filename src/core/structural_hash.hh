/**
 * @file
 * Structural hashing for content-addressed plan caches.
 *
 * Compiled RedEye programs and degradation plans are pure functions
 * of structure — network topology, partition, operating point, fault
 * epoch — so they can be cached under a key derived from that
 * structure alone. StructuralHasher builds such 64-bit keys the way
 * chess engines build Zobrist keys: every ingested token is expanded
 * through splitmix64 (a fixed pseudo-random table indexed by the
 * token, computed instead of stored) and folded into the running
 * state, so that "conv 32 channels then pool" and "conv 3 channels
 * then 2 pools" land far apart even though their raw token streams
 * are permutations of each other — position is mixed into every
 * token.
 *
 * The hash is stable across processes and platforms (no pointer
 * values, no unseeded std::hash), which is what makes the keys
 * *content* addresses: the same topology + operating point always
 * maps to the same key, so a cache hit is a semantic guarantee, not
 * a lucky pointer identity.
 */

#ifndef REDEYE_CORE_STRUCTURAL_HASH_HH
#define REDEYE_CORE_STRUCTURAL_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "core/rng.hh" // splitmix64: the per-token expansion

namespace redeye {

/** Accumulates structure tokens into a stable 64-bit key. */
class StructuralHasher
{
  public:
    /** @param salt Domain separator (one per cache kind). */
    explicit StructuralHasher(std::uint64_t salt = 0)
        : state_(splitmix64(salt ^ 0x5ede1e5ULL)), position_(1)
    {
    }

    /** Fold one integer token. */
    StructuralHasher &
    mix(std::uint64_t token)
    {
        // Position-dependent expansion: token t at position p and
        // token p at position t contribute different words.
        state_ ^= splitmix64(token + position_ * kPositionSalt);
        state_ = splitmix64(state_);
        ++position_;
        return *this;
    }

    /** Fold a signed integer. */
    StructuralHasher &
    mixSigned(std::int64_t token)
    {
        return mix(static_cast<std::uint64_t>(token));
    }

    /** Fold a double, bitwise (NaN payloads included). */
    StructuralHasher &mixDouble(double value);

    /** Fold a string's bytes and length. */
    StructuralHasher &mixString(std::string_view s);

    /** The accumulated key. */
    std::uint64_t digest() const { return splitmix64(state_); }

  private:
    static constexpr std::uint64_t kPositionSalt =
        0xd1b54a32d192ed03ULL;

    std::uint64_t state_;
    std::uint64_t position_;
};

} // namespace redeye

#endif // REDEYE_CORE_STRUCTURAL_HASH_HH
