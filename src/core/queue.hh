/**
 * @file
 * Bounded multi-producer/multi-consumer queue.
 *
 * The hand-off primitive of the streaming runtime (src/stream): each
 * pipeline stage pops frames from its inbound queue and pushes results
 * downstream. The queue is bounded so that a slow stage exerts
 * backpressure on its producers instead of buffering without limit;
 * admission policies (drop-oldest/drop-newest/block) are built from
 * the three push flavours below.
 *
 * Storage is a ring buffer preallocated at construction: `capacity`
 * slots are default-constructed once and items move in and out of
 * them, so steady-state operation performs no heap allocation (the
 * element type's own move assignment permitting). This requires T to
 * be default-constructible and move-assignable.
 *
 * Pushes take the item by rvalue reference and only move from it on
 * success: after tryPush() returns Full (or any push returns Closed)
 * the caller's object is intact, which lets producers recycle a
 * rejected frame instead of rebuilding it.
 *
 * Lifecycle: producers call close() when no further items will be
 * pushed; consumers drain the remaining items and then see pop()
 * return false. All operations are safe to call concurrently from any
 * number of threads.
 */

#ifndef REDEYE_CORE_QUEUE_HH
#define REDEYE_CORE_QUEUE_HH

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/logging.hh"

namespace redeye {

/** Outcome of a push attempt. */
enum class QueuePush {
    Ok,      ///< item enqueued
    Full,    ///< rejected: queue at capacity (tryPush only)
    Closed,  ///< rejected: queue already closed
};

/** Outcome of a timed pop attempt. */
enum class QueuePop {
    Ok,       ///< item dequeued
    TimedOut, ///< nothing arrived within the deadline
    Closed,   ///< queue closed and drained
};

/** Bounded blocking MPMC FIFO over a preallocated ring buffer. */
template <typename T>
class BoundedQueue
{
  public:
    /** @param capacity Maximum queued items (>= 1). */
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity), slots_(capacity)
    {
        fatal_if(capacity_ == 0, "queue capacity must be positive");
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Enqueue @p item, blocking while the queue is full. Returns
     * QueuePush::Ok, or QueuePush::Closed if the queue was (or
     * became, while blocked) closed — in which case @p item is left
     * unmoved.
     */
    QueuePush
    push(T &&item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notFull_.wait(lock,
                      [&] { return closed_ || count_ < capacity_; });
        if (closed_)
            return QueuePush::Closed;
        enqueue(std::move(item));
        lock.unlock();
        notEmpty_.notify_one();
        return QueuePush::Ok;
    }

    /**
     * Enqueue without blocking; fails with Full at capacity. On any
     * failure @p item is left unmoved for the caller to recycle.
     */
    QueuePush
    tryPush(T &&item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (closed_)
            return QueuePush::Closed;
        if (count_ >= capacity_)
            return QueuePush::Full;
        enqueue(std::move(item));
        lock.unlock();
        notEmpty_.notify_one();
        return QueuePush::Ok;
    }

    /**
     * Enqueue without blocking, evicting the oldest queued item to
     * make room when the queue is full. The evicted item (if any) is
     * returned through @p evicted so the caller can account for it.
     */
    QueuePush
    pushEvictOldest(T &&item, std::optional<T> &evicted)
    {
        evicted.reset();
        std::unique_lock<std::mutex> lock(mutex_);
        if (closed_)
            return QueuePush::Closed;
        if (count_ >= capacity_) {
            evicted.emplace(std::move(slots_[head_]));
            head_ = next(head_);
            --count_;
        }
        enqueue(std::move(item));
        lock.unlock();
        notEmpty_.notify_one();
        return QueuePush::Ok;
    }

    /**
     * Dequeue into @p out, blocking while the queue is empty and not
     * closed. Returns false once the queue is closed and drained —
     * the consumer's termination signal.
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait(lock, [&] { return closed_ || count_ > 0; });
        if (count_ == 0)
            return false; // closed and drained
        dequeue(out);
        lock.unlock();
        notFull_.notify_one();
        return true;
    }

    /**
     * Dequeue into @p out, blocking at most @p seconds while the
     * queue is empty and not closed. A watchdog-friendly pop: a
     * consumer that must stay responsive (to check a stop flag, kick
     * a heartbeat) uses this instead of the unbounded pop().
     */
    QueuePop
    tryPopFor(T &out, double seconds)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait_for(lock, std::chrono::duration<double>(seconds),
                           [&] { return closed_ || count_ > 0; });
        if (count_ > 0) {
            dequeue(out);
            lock.unlock();
            notFull_.notify_one();
            return QueuePop::Ok;
        }
        return closed_ ? QueuePop::Closed : QueuePop::TimedOut;
    }

    /** Dequeue without blocking; false when empty (or drained). */
    bool
    tryPop(T &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (count_ == 0)
            return false;
        dequeue(out);
        lock.unlock();
        notFull_.notify_one();
        return true;
    }

    /**
     * Mark the queue closed: subsequent pushes fail, blocked pushers
     * and poppers wake, and consumers drain what remains. Idempotent.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    /** True once close() has been called. */
    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    /** Items currently queued. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return count_;
    }

    /** Maximum items the queue holds. */
    std::size_t capacity() const { return capacity_; }

    /** Largest depth observed since construction. */
    std::size_t
    highWater() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return highWater_;
    }

    /** Total successful pushes (including ones that evicted). */
    std::uint64_t
    totalPushed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return pushed_;
    }

  private:
    std::size_t
    next(std::size_t i) const
    {
        return i + 1 == capacity_ ? 0 : i + 1;
    }

    /** Append under the lock and update the counters. */
    void
    enqueue(T &&item)
    {
        slots_[(head_ + count_) % capacity_] = std::move(item);
        ++count_;
        ++pushed_;
        highWater_ = std::max(highWater_, count_);
    }

    /** Remove the head under the lock. */
    void
    dequeue(T &out)
    {
        out = std::move(slots_[head_]);
        head_ = next(head_);
        --count_;
    }

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    bool closed_ = false;
    std::size_t highWater_ = 0;
    std::uint64_t pushed_ = 0;
};

} // namespace redeye

#endif // REDEYE_CORE_QUEUE_HH
