/**
 * @file
 * The repo-wide CSV API: a minimal RFC-4180 writer plus the shared
 * `--csv <path>` command-line idiom. Every binary that mirrors its
 * results into CSV — the figure benches, the google-benchmark micros
 * (which lower the flag onto the benchmark library's CSV reporter),
 * the sweep tools — goes through this one surface, so output files
 * stay mechanically uniform (for replotting the paper's charts and
 * for CI artifacts).
 */

#ifndef REDEYE_CORE_CSV_HH
#define REDEYE_CORE_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace redeye {

/** Writes RFC-4180-style CSV rows to a file. */
class CsvWriter
{
  public:
    /** Open @p path for writing (fatal on failure). */
    explicit CsvWriter(const std::string &path);

    /** Write the header row (once, before data rows). */
    void header(const std::vector<std::string> &columns);

    /** Write one data row (cells are quoted when needed). */
    void row(const std::vector<std::string> &cells);

    /** Rows written so far (excluding the header). */
    std::size_t rows() const { return rows_; }

    const std::string &path() const { return path_; }

  private:
    void writeLine(const std::vector<std::string> &cells);

    std::string path_;
    std::ofstream os_;
    bool headerWritten_ = false;
    std::size_t rows_ = 0;
};

/** Escape one CSV cell (quote if it contains , " or newline). */
std::string csvEscape(const std::string &cell);

/**
 * Strip `--csv <path>` from an argument vector and return the path
 * (empty when the flag is absent). @p argc and @p argv are rewritten
 * in place with the two slots removed, so downstream flag parsers
 * (hand-rolled loops, benchmark::Initialize) never see the flag.
 * Fatal when `--csv` appears without a value.
 */
std::string stripCsvFlag(int &argc, char **argv);

} // namespace redeye

#endif // REDEYE_CORE_CSV_HH
