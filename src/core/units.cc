#include "core/units.hh"

#include <cmath>
#include <cstdio>

namespace redeye {
namespace units {

std::string
siFormat(double value, const std::string &unit, int precision)
{
    struct Prefix { double scale; const char *name; };
    static const Prefix prefixes[] = {
        {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
        {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
        {1e-15, "f"},
    };

    const double mag = std::fabs(value);
    if (mag == 0.0 || !std::isfinite(value)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f %s", precision, value,
                      unit.c_str());
        return buf;
    }

    const Prefix *chosen = &prefixes[sizeof(prefixes) /
                                     sizeof(prefixes[0]) - 1];
    for (const auto &p : prefixes) {
        if (mag >= p.scale) {
            chosen = &p;
            break;
        }
    }

    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f %s%s", precision,
                  value / chosen->scale, chosen->name, unit.c_str());
    return buf;
}

double
powerDb(double ratio)
{
    return 10.0 * std::log10(ratio);
}

double
dbToPowerRatio(double db)
{
    return std::pow(10.0, db / 10.0);
}

double
amplitudeDb(double ratio)
{
    return 20.0 * std::log10(ratio);
}

double
dbToAmplitudeRatio(double db)
{
    return std::pow(10.0, db / 20.0);
}

} // namespace units
} // namespace redeye
