#include "core/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace redeye {

namespace {

LogLevel g_threshold = LogLevel::Inform;

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Panic: return "panic";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Warn: return "warn";
      case LogLevel::Inform: return "info";
      case LogLevel::Debug: return "debug";
    }
    return "?";
}

} // namespace

void
setLogThreshold(LogLevel level)
{
    g_threshold = level;
}

LogLevel
logThreshold()
{
    return g_threshold;
}

namespace detail {

void
emit(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) > static_cast<int>(g_threshold))
        return;
    std::fprintf(stderr, "%s: %s\n", prefix(level), msg.c_str());
}

void
terminate(LogLevel level, const std::string &msg, const char *file,
          int line)
{
    std::fprintf(stderr, "%s: %s\n  at %s:%d\n", prefix(level),
                 msg.c_str(), file, line);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace redeye
