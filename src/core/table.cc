#include "core/table.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace redeye {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title))
{
}

void
TablePrinter::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    rows_.push_back(Row{std::move(row), false});
}

void
TablePrinter::addSeparator()
{
    rows_.push_back(Row{{}, true});
}

void
TablePrinter::print(std::ostream &os) const
{
    std::size_t cols = header_.size();
    for (const auto &r : rows_)
        cols = std::max(cols, r.cells.size());
    if (cols == 0)
        return;

    std::vector<std::size_t> width(cols, 0);
    auto measure = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    measure(header_);
    for (const auto &r : rows_)
        if (!r.separator)
            measure(r.cells);

    auto rule = [&]() {
        for (std::size_t i = 0; i < cols; ++i) {
            os << '+' << std::string(width[i] + 2, '-');
        }
        os << "+\n";
    };
    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cols; ++i) {
            const std::string &c = i < cells.size() ? cells[i] : "";
            os << "| " << c << std::string(width[i] - c.size() + 1, ' ');
        }
        os << "|\n";
    };

    if (!title_.empty())
        os << title_ << '\n';
    rule();
    if (!header_.empty()) {
        line(header_);
        rule();
    }
    for (const auto &r : rows_) {
        if (r.separator)
            rule();
        else
            line(r.cells);
    }
    rule();
}

std::string
fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
fmtPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

} // namespace redeye
