/**
 * @file
 * Status and error reporting for the RedEye simulator.
 *
 * Follows the gem5 convention: panic() flags internal simulator bugs
 * (aborts, may dump core); fatal() flags user error such as an invalid
 * configuration (clean exit with status 1); warn()/inform() report
 * conditions without stopping the simulation.
 */

#ifndef REDEYE_CORE_LOGGING_HH
#define REDEYE_CORE_LOGGING_HH

#include <sstream>
#include <string>

namespace redeye {

/** Verbosity levels used by the message sink. */
enum class LogLevel {
    Panic,
    Fatal,
    Warn,
    Inform,
    Debug,
};

namespace detail {

/** Emit a message and, for Panic/Fatal, terminate the process. */
[[noreturn]] void terminate(LogLevel level, const std::string &msg,
                            const char *file, int line);

/** Emit a non-terminating message to the sink. */
void emit(LogLevel level, const std::string &msg);

/** Fold a variadic pack into one string via operator<<. */
template <typename... Args>
std::string
fold(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Set the minimum level that gets printed (Panic is never suppressed
 * from terminating, only from printing).
 */
void setLogThreshold(LogLevel level);

/** Current print threshold. */
LogLevel logThreshold();

/** Report an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit(LogLevel::Inform,
                 detail::fold(std::forward<Args>(args)...));
}

/** Report suspicious behaviour that does not stop the simulation. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit(LogLevel::Warn, detail::fold(std::forward<Args>(args)...));
}

} // namespace redeye

/**
 * Internal invariant violation: a simulator bug. Prints the message
 * with source location and aborts.
 */
#define panic(...)                                                         \
    ::redeye::detail::terminate(                                           \
        ::redeye::LogLevel::Panic,                                         \
        ::redeye::detail::fold(__VA_ARGS__), __FILE__, __LINE__)

/**
 * Unrecoverable user error (bad configuration, unsupported model).
 * Prints the message and exits with status 1.
 */
#define fatal(...)                                                         \
    ::redeye::detail::terminate(                                           \
        ::redeye::LogLevel::Fatal,                                         \
        ::redeye::detail::fold(__VA_ARGS__), __FILE__, __LINE__)

/** Assert an internal invariant; failure is a panic. */
#define panic_if(cond, ...)                                                \
    do {                                                                   \
        if (cond) {                                                        \
            panic("condition '" #cond "' holds: ", __VA_ARGS__);           \
        }                                                                  \
    } while (0)

/** Reject invalid user input; failure is fatal. */
#define fatal_if(cond, ...)                                                \
    do {                                                                   \
        if (cond) {                                                        \
            fatal("condition '" #cond "' holds: ", __VA_ARGS__);           \
        }                                                                  \
    } while (0)

#endif // REDEYE_CORE_LOGGING_HH
