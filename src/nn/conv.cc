#include "nn/conv.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"
#include "core/rng.hh"
#include "tensor/kernels.hh"

namespace redeye {
namespace nn {

ConvolutionLayer::ConvolutionLayer(std::string name, ConvParams params)
    : Layer(std::move(name)), params_(params)
{
    fatal_if(params_.outChannels == 0, "conv '", this->name(),
             "': outChannels must be positive");
    fatal_if(params_.kernelH == 0 || params_.kernelW == 0, "conv '",
             this->name(), "': kernel extent must be positive");
    fatal_if(params_.strideH == 0 || params_.strideW == 0, "conv '",
             this->name(), "': stride must be positive");
    fatal_if(params_.groups == 0, "conv '", this->name(),
             "': groups must be positive");
    fatal_if(params_.outChannels % params_.groups != 0, "conv '",
             this->name(), "': outChannels not divisible by groups");
    window_ = WindowParams{params_.kernelH, params_.kernelW,
                           params_.strideH, params_.strideW,
                           params_.padH, params_.padW};
}

void
ConvolutionLayer::materialize(std::size_t in_channels) const
{
    fatal_if(in_channels % params_.groups != 0, "conv '", name(),
             "': input channels ", in_channels,
             " not divisible by groups ", params_.groups);
    const Shape wshape(params_.outChannels, in_channels / params_.groups,
                       params_.kernelH, params_.kernelW);
    if (weights_.shape() == wshape)
        return;
    panic_if(!weights_.empty(), "conv '", name(),
             "' rebound to a different input shape");
    weights_ = Tensor(wshape);
    weightGrad_ = Tensor(wshape);
    if (params_.bias) {
        biases_ = Tensor(Shape(1, params_.outChannels, 1, 1));
        biasGrad_ = Tensor(Shape(1, params_.outChannels, 1, 1));
    }
}

Shape
ConvolutionLayer::outputShape(const std::vector<Shape> &in) const
{
    fatal_if(in.size() != 1, "conv '", name(), "' takes one input");
    const Shape &s = in[0];
    fatal_if(s.h + 2 * params_.padH < params_.kernelH ||
                 s.w + 2 * params_.padW < params_.kernelW,
             "conv '", name(), "': kernel larger than padded input ",
             s.str());
    materialize(s.c);
    return Shape(s.n, params_.outChannels, window_.outH(s.h),
                 window_.outW(s.w));
}

void
ConvolutionLayer::forward(const std::vector<const Tensor *> &in,
                          Tensor &out, ExecContext &ctx)
{
    const Tensor &x = *in[0];
    const Shape &is = x.shape();
    const Shape os = outputShape({is});
    if (out.shape() != os)
        out = Tensor(os);

    const std::size_t groups = params_.groups;
    const std::size_t in_cg = is.c / groups;
    const std::size_t out_cg = os.c / groups;
    const std::size_t k = in_cg * params_.kernelH * params_.kernelW;
    const std::size_t ohw = os.h * os.w;

    // Batch items are independent: each chunk lowers its items with a
    // private column buffer and writes a disjoint output range.
    parallelForChunks(ctx, is.n, [&](std::size_t n0, std::size_t n1,
                                     std::size_t) {
        std::vector<float> cols;
        for (std::size_t n = n0; n < n1; ++n) {
            for (std::size_t g = 0; g < groups; ++g) {
                const float *img = x.data() +
                                   is.index(n, g * in_cg, 0, 0);
                kernels::im2col(img, in_cg, is.h, is.w, window_, cols);
                const float *w = weights_.data() + g * out_cg * k;
                float *o = out.data() + os.index(n, g * out_cg, 0, 0);
                // O[out_cg x ohw] = W[out_cg x k] * cols[k x ohw],
                // with the per-channel bias fused into the epilogue.
                kernels::gemm(
                    w, kernels::MatShape{out_cg, k}, cols.data(),
                    kernels::MatShape{k, ohw}, o,
                    params_.bias
                        ? kernels::Epilogue::biasPerRow(
                              biases_.data() + g * out_cg)
                        : kernels::Epilogue{});
            }
        }
    });

    if (clip_)
        out.clamp(-*clip_, *clip_);
}

void
ConvolutionLayer::backward(const std::vector<const Tensor *> &in,
                           const Tensor &out, const Tensor &out_grad,
                           std::vector<Tensor> &in_grads,
                           ExecContext &ctx)
{
    const Tensor &x = *in[0];
    const Shape &is = x.shape();
    const Shape &os = out.shape();

    // Mask gradients through the clipping nonlinearity, if enabled.
    Tensor masked;
    const Tensor *g_out = &out_grad;
    if (clip_) {
        masked = out_grad;
        for (std::size_t i = 0; i < out.size(); ++i) {
            if (std::fabs(out[i]) >= *clip_)
                masked[i] = 0.0f;
        }
        g_out = &masked;
    }

    const std::size_t groups = params_.groups;
    const std::size_t in_cg = is.c / groups;
    const std::size_t out_cg = os.c / groups;
    const std::size_t k = in_cg * params_.kernelH * params_.kernelW;
    const std::size_t ohw = os.h * os.w;

    // dx rows are disjoint per item; parameter gradients accumulate
    // into per-chunk scratch and reduce in chunk order afterwards.
    const std::size_t slots = std::min(ctx.threads(),
                                       std::max<std::size_t>(is.n, 1));
    std::vector<std::vector<float>> dw_slots(slots);
    std::vector<std::vector<double>> db_slots(slots);

    Tensor &dx = in_grads[0];
    parallelForChunks(ctx, is.n, [&](std::size_t n0, std::size_t n1,
                                     std::size_t slot) {
        auto &dw_acc = dw_slots[slot];
        dw_acc.assign(weightGrad_.size(), 0.0f);
        auto &db_acc = db_slots[slot];
        if (params_.bias)
            db_acc.assign(os.c, 0.0);

        std::vector<float> cols;
        std::vector<float> col_grad;
        std::vector<float> img_grad;
        for (std::size_t n = n0; n < n1; ++n) {
            for (std::size_t g = 0; g < groups; ++g) {
                const float *img = x.data() +
                                   is.index(n, g * in_cg, 0, 0);
                kernels::im2col(img, in_cg, is.h, is.w, window_, cols);

                const float *go = g_out->data() +
                                  os.index(n, g * out_cg, 0, 0);
                float *dw = dw_acc.data() + g * out_cg * k;
                // dW[out_cg x k] += G[out_cg x ohw] * cols^T.
                kernels::gemmTransB(go,
                                    kernels::MatShape{out_cg, ohw},
                                    cols.data(),
                                    kernels::MatShape{k, ohw}, dw,
                                    kernels::Epilogue::accumulateInto());

                // dCols[k x ohw] = W^T[k x out_cg] * G[out_cg x ohw].
                col_grad.assign(k * ohw, 0.0f);
                const float *w = weights_.data() + g * out_cg * k;
                kernels::gemmTransA(w, kernels::MatShape{out_cg, k},
                                    go,
                                    kernels::MatShape{out_cg, ohw},
                                    col_grad.data(),
                                    kernels::Epilogue::accumulateInto());

                // Scatter into a scratch image, then accumulate, so
                // that other consumers' contributions to dx are
                // preserved.
                img_grad.assign(in_cg * is.h * is.w, 0.0f);
                kernels::col2im(col_grad, in_cg, is.h, is.w, window_,
                                img_grad.data());
                float *dimg = dx.data() + is.index(n, g * in_cg, 0, 0);
                for (std::size_t i = 0; i < img_grad.size(); ++i)
                    dimg[i] += img_grad[i];
            }
            if (params_.bias) {
                for (std::size_t c = 0; c < os.c; ++c) {
                    const float *go = g_out->data() +
                                      os.index(n, c, 0, 0);
                    double acc = 0.0;
                    for (std::size_t i = 0; i < ohw; ++i)
                        acc += go[i];
                    db_acc[c] += acc;
                }
            }
        }
    });

    for (std::size_t s = 0; s < slots; ++s) {
        if (dw_slots[s].empty())
            continue;
        for (std::size_t i = 0; i < weightGrad_.size(); ++i)
            weightGrad_[i] += dw_slots[s][i];
        if (params_.bias) {
            for (std::size_t c = 0; c < os.c; ++c)
                biasGrad_[c] += static_cast<float>(db_slots[s][c]);
        }
    }
}

std::vector<Tensor *>
ConvolutionLayer::params()
{
    std::vector<Tensor *> out{&weights_};
    if (params_.bias)
        out.push_back(&biases_);
    return out;
}

std::vector<Tensor *>
ConvolutionLayer::paramGrads()
{
    std::vector<Tensor *> out{&weightGrad_};
    if (params_.bias)
        out.push_back(&biasGrad_);
    return out;
}

std::size_t
ConvolutionLayer::macCount(const std::vector<Shape> &in) const
{
    const Shape os = outputShape(in);
    const std::size_t k = (in[0].c / params_.groups) * params_.kernelH *
                          params_.kernelW;
    return os.size() * k;
}

void
ConvolutionLayer::initHe(Rng &rng)
{
    panic_if(weights_.empty(), "conv '", name(),
             "' not materialized; add it to a network first");
    const Shape &ws = weights_.shape();
    const double fan_in = static_cast<double>(ws.c * ws.h * ws.w);
    const double stddev = std::sqrt(2.0 / fan_in);
    weights_.fillGaussian(rng, 0.0f, static_cast<float>(stddev));
    if (params_.bias)
        biases_.zero();
}

} // namespace nn
} // namespace redeye
