#include "nn/conv.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"
#include "core/rng.hh"
#include "core/structural_hash.hh"
#include "core/workspace.hh"
#include "tensor/kernels.hh"

namespace redeye {
namespace nn {

ConvolutionLayer::ConvolutionLayer(std::string name, ConvParams params)
    : Layer(std::move(name)), params_(params)
{
    fatal_if(params_.outChannels == 0, "conv '", this->name(),
             "': outChannels must be positive");
    fatal_if(params_.kernelH == 0 || params_.kernelW == 0, "conv '",
             this->name(), "': kernel extent must be positive");
    fatal_if(params_.strideH == 0 || params_.strideW == 0, "conv '",
             this->name(), "': stride must be positive");
    fatal_if(params_.groups == 0, "conv '", this->name(),
             "': groups must be positive");
    fatal_if(params_.outChannels % params_.groups != 0, "conv '",
             this->name(), "': outChannels not divisible by groups");
    window_ = WindowParams{params_.kernelH, params_.kernelW,
                           params_.strideH, params_.strideW,
                           params_.padH, params_.padW};
}

void
ConvolutionLayer::materialize(std::size_t in_channels) const
{
    fatal_if(in_channels % params_.groups != 0, "conv '", name(),
             "': input channels ", in_channels,
             " not divisible by groups ", params_.groups);
    const Shape wshape(params_.outChannels, in_channels / params_.groups,
                       params_.kernelH, params_.kernelW);
    if (weights_.shape() == wshape)
        return;
    panic_if(!weights_.empty(), "conv '", name(),
             "' rebound to a different input shape");
    weights_ = Tensor(wshape);
    weightGrad_ = Tensor(wshape);
    if (params_.bias) {
        biases_ = Tensor(Shape(1, params_.outChannels, 1, 1));
        biasGrad_ = Tensor(Shape(1, params_.outChannels, 1, 1));
    }
}

Shape
ConvolutionLayer::outputShape(const std::vector<Shape> &in) const
{
    fatal_if(in.size() != 1, "conv '", name(), "' takes one input");
    return outputShapeFor(in[0]);
}

Shape
ConvolutionLayer::outputShapeFor(const Shape &s) const
{
    fatal_if(s.h + 2 * params_.padH < params_.kernelH ||
                 s.w + 2 * params_.padW < params_.kernelW,
             "conv '", name(), "': kernel larger than padded input ",
             s.str());
    materialize(s.c);
    return Shape(s.n, params_.outChannels, window_.outH(s.h),
                 window_.outW(s.w));
}

void
ConvolutionLayer::forward(const std::vector<const Tensor *> &in,
                          Tensor &out, ExecContext &ctx)
{
    const Tensor &x = *in[0];
    const Shape &is = x.shape();
    const Shape os = outputShapeFor(is);
    if (out.shape() != os)
        out = Tensor(os);

    const std::size_t groups = params_.groups;
    const std::size_t in_cg = is.c / groups;
    const std::size_t out_cg = os.c / groups;
    const std::size_t k = in_cg * params_.kernelH * params_.kernelW;
    const std::size_t ohw = os.h * os.w;

    Workspace *ws = ctx.workspace();
    if (ws != nullptr && is.n > 1) {
        // Batched lowering: with a workspace attached, lower the
        // whole batch into one arena buffer in a single parallel
        // pass, then issue one batched GEMM whose work units are
        // (item, group, column-range) triples — the primitive the
        // stream tail's dynamic batching bottoms out in. Bits match
        // the per-item path exactly: im2col is pure data movement,
        // and per-column GEMM accumulation chains are invariant
        // under any partition of the column space (DESIGN.md §12).
        const std::size_t col_elems = k * ohw;
        const std::size_t units = is.n * groups;
        Arena &arena = ws->arena(0);
        ArenaScope scope(arena);
        // Reserve the GEMM pack footprint too: lane 0 may also pack
        // panels inside gemmBatch, and growing the arena then would
        // invalidate `cols` while other lanes read it.
        arena.reserve(arena.used() +
                      (units * col_elems + kernels::gemmPackFloats() +
                       4) * sizeof(float));
        float *cols = arena.alloc<float>(units * col_elems);
        parallelFor(ctx, units, [&](std::size_t u) {
            const std::size_t n = u / groups;
            const std::size_t g = u % groups;
            const float *img = x.data() + is.index(n, g * in_cg, 0, 0);
            kernels::im2col(img, in_cg, is.h, is.w, window_,
                            cols + u * col_elems);
        });
        probs_.resize(units);
        for (std::size_t u = 0; u < units; ++u) {
            const std::size_t n = u / groups;
            const std::size_t g = u % groups;
            probs_[u].a = weights_.data() + g * out_cg * k;
            probs_[u].b = cols + u * col_elems;
            probs_[u].c = out.data() + os.index(n, g * out_cg, 0, 0);
            probs_[u].bias = params_.bias
                                 ? biases_.data() + g * out_cg
                                 : nullptr;
        }
        kernels::gemmBatch(
            probs_.data(), probs_.size(),
            kernels::MatShape{out_cg, k}, kernels::MatShape{k, ohw},
            params_.bias
                ? kernels::Epilogue::biasPerRow(biases_.data())
                : kernels::Epilogue{},
            ctx, 0);
    } else {
        // Per-item path (single frames, or no workspace): each chunk
        // lowers its items with a private column buffer — drawn from
        // the lane's workspace arena when one is attached, so
        // steady-state frames allocate nothing — and writes a
        // disjoint output range. For a single item the GEMM itself
        // parallelizes over the context (intra-frame parallelism);
        // for multiple chunks the nested call detects the pool and
        // runs serially on its lane.
        parallelForChunks(ctx, is.n, [&](std::size_t n0,
                                         std::size_t n1,
                                         std::size_t lane) {
            std::optional<ArenaScope> scope;
            std::vector<float> local;
            float *cols;
            if (ws) {
                Arena &arena = ws->arena(lane);
                scope.emplace(arena);
                // Include the GEMM pack footprint: the nested gemm
                // packs panels on this lane (or, for a single item,
                // on every lane), and growth would invalidate
                // `cols`.
                arena.reserve(arena.used() +
                              (k * ohw + kernels::gemmPackFloats() +
                               4) * sizeof(float));
                cols = arena.alloc<float>(k * ohw);
            } else {
                local.resize(k * ohw);
                cols = local.data();
            }
            for (std::size_t n = n0; n < n1; ++n) {
                for (std::size_t g = 0; g < groups; ++g) {
                    const float *img = x.data() +
                                       is.index(n, g * in_cg, 0, 0);
                    kernels::im2col(img, in_cg, is.h, is.w, window_,
                                    cols);
                    const float *w = weights_.data() + g * out_cg * k;
                    float *o = out.data() +
                               os.index(n, g * out_cg, 0, 0);
                    // O[out_cg x ohw] = W[out_cg x k] * cols[k x
                    // ohw], with the per-channel bias fused into the
                    // epilogue.
                    kernels::gemm(
                        w, kernels::MatShape{out_cg, k}, cols,
                        kernels::MatShape{k, ohw}, o,
                        params_.bias
                            ? kernels::Epilogue::biasPerRow(
                                  biases_.data() + g * out_cg)
                            : kernels::Epilogue{},
                        ctx, lane);
                }
            }
        });
    }

    if (clip_)
        out.clamp(-*clip_, *clip_);
}

void
ConvolutionLayer::backward(const std::vector<const Tensor *> &in,
                           const Tensor &out, const Tensor &out_grad,
                           std::vector<Tensor> &in_grads,
                           ExecContext &ctx)
{
    const Tensor &x = *in[0];
    const Shape &is = x.shape();
    const Shape &os = out.shape();

    // Mask gradients through the clipping nonlinearity, if enabled.
    Tensor masked;
    const Tensor *g_out = &out_grad;
    if (clip_) {
        masked = out_grad;
        for (std::size_t i = 0; i < out.size(); ++i) {
            if (std::fabs(out[i]) >= *clip_)
                masked[i] = 0.0f;
        }
        g_out = &masked;
    }

    const std::size_t groups = params_.groups;
    const std::size_t in_cg = is.c / groups;
    const std::size_t out_cg = os.c / groups;
    const std::size_t k = in_cg * params_.kernelH * params_.kernelW;
    const std::size_t ohw = os.h * os.w;

    if (is.n == 0)
        return;

    // dx rows are disjoint per item; parameter gradients accumulate
    // into per-chunk scratch and reduce in chunk order afterwards.
    // The slot vectors persist across calls (capacity reuse); the
    // per-item column/image scratch comes from the lane's workspace
    // arena when one is attached.
    const std::size_t slots = std::min(ctx.threads(), is.n);
    if (dwSlots_.size() < slots) {
        dwSlots_.resize(slots);
        dbSlots_.resize(slots);
    }

    const std::size_t col_elems = k * ohw;
    const std::size_t img_elems = in_cg * is.h * is.w;
    Workspace *ws = ctx.workspace();

    Tensor &dx = in_grads[0];
    parallelForChunks(ctx, is.n, [&](std::size_t n0, std::size_t n1,
                                     std::size_t slot) {
        auto &dw_acc = dwSlots_[slot];
        dw_acc.assign(weightGrad_.size(), 0.0f);
        auto &db_acc = dbSlots_[slot];
        if (params_.bias)
            db_acc.assign(os.c, 0.0);

        std::optional<ArenaScope> scope;
        std::vector<float> local;
        float *cols;
        float *col_grad;
        float *img_grad;
        if (ws) {
            Arena &arena = ws->arena(slot);
            scope.emplace(arena);
            // Reserve the whole footprint up front — including the
            // GEMM pack panels the nested kernels carve on this lane
            // — since growth would invalidate spans carved earlier
            // in this scope.
            arena.reserve(arena.used() +
                          (2 * col_elems + img_elems +
                           kernels::gemmPackFloats() + 4) *
                              sizeof(float));
            cols = arena.alloc<float>(col_elems);
            col_grad = arena.alloc<float>(col_elems);
            img_grad = arena.alloc<float>(img_elems);
        } else {
            local.resize(2 * col_elems + img_elems);
            cols = local.data();
            col_grad = cols + col_elems;
            img_grad = col_grad + col_elems;
        }
        for (std::size_t n = n0; n < n1; ++n) {
            for (std::size_t g = 0; g < groups; ++g) {
                const float *img = x.data() +
                                   is.index(n, g * in_cg, 0, 0);
                kernels::im2col(img, in_cg, is.h, is.w, window_, cols);

                const float *go = g_out->data() +
                                  os.index(n, g * out_cg, 0, 0);
                float *dw = dw_acc.data() + g * out_cg * k;
                // dW[out_cg x k] += G[out_cg x ohw] * cols^T.
                kernels::gemmTransB(go,
                                    kernels::MatShape{out_cg, ohw},
                                    cols,
                                    kernels::MatShape{k, ohw}, dw,
                                    kernels::Epilogue::accumulateInto(),
                                    ctx, slot);

                // dCols[k x ohw] = W^T[k x out_cg] * G[out_cg x ohw].
                std::fill(col_grad, col_grad + col_elems, 0.0f);
                const float *w = weights_.data() + g * out_cg * k;
                kernels::gemmTransA(w, kernels::MatShape{out_cg, k},
                                    go,
                                    kernels::MatShape{out_cg, ohw},
                                    col_grad,
                                    kernels::Epilogue::accumulateInto(),
                                    ctx, slot);

                // Scatter into a scratch image (zeroed by col2im),
                // then accumulate, so that other consumers'
                // contributions to dx are preserved.
                kernels::col2im(col_grad, in_cg, is.h, is.w, window_,
                                img_grad);
                float *dimg = dx.data() + is.index(n, g * in_cg, 0, 0);
                for (std::size_t i = 0; i < img_elems; ++i)
                    dimg[i] += img_grad[i];
            }
            if (params_.bias) {
                for (std::size_t c = 0; c < os.c; ++c) {
                    const float *go = g_out->data() +
                                      os.index(n, c, 0, 0);
                    double acc = 0.0;
                    for (std::size_t i = 0; i < ohw; ++i)
                        acc += go[i];
                    db_acc[c] += acc;
                }
            }
        }
    });

    for (std::size_t s = 0; s < slots; ++s) {
        for (std::size_t i = 0; i < weightGrad_.size(); ++i)
            weightGrad_[i] += dwSlots_[s][i];
        if (params_.bias) {
            for (std::size_t c = 0; c < os.c; ++c)
                biasGrad_[c] += static_cast<float>(dbSlots_[s][c]);
        }
    }
}

std::vector<Tensor *>
ConvolutionLayer::params()
{
    std::vector<Tensor *> out{&weights_};
    if (params_.bias)
        out.push_back(&biases_);
    return out;
}

std::vector<Tensor *>
ConvolutionLayer::paramGrads()
{
    std::vector<Tensor *> out{&weightGrad_};
    if (params_.bias)
        out.push_back(&biasGrad_);
    return out;
}

std::size_t
ConvolutionLayer::macCount(const std::vector<Shape> &in) const
{
    const Shape os = outputShape(in);
    const std::size_t k = (in[0].c / params_.groups) * params_.kernelH *
                          params_.kernelW;
    return os.size() * k;
}

void
ConvolutionLayer::mixStructure(StructuralHasher &h) const
{
    h.mix(params_.outChannels)
        .mix(params_.kernelH)
        .mix(params_.kernelW)
        .mix(params_.strideH)
        .mix(params_.strideW)
        .mix(params_.padH)
        .mix(params_.padW)
        .mix(params_.groups)
        .mix(params_.bias ? 1 : 0);
    // The analog clip changes execution semantics without changing
    // any shape, so it is part of the structure.
    h.mix(clip_.has_value() ? 1 : 0);
    if (clip_)
        h.mixDouble(*clip_);
}

void
ConvolutionLayer::initHe(Rng &rng)
{
    panic_if(weights_.empty(), "conv '", name(),
             "' not materialized; add it to a network first");
    const Shape &ws = weights_.shape();
    const double fan_in = static_cast<double>(ws.c * ws.h * ws.w);
    const double stddev = std::sqrt(2.0 / fan_in);
    weights_.fillGaussian(rng, 0.0f, static_cast<float>(stddev));
    if (params_.bias)
        biases_.zero();
}

} // namespace nn
} // namespace redeye
