#include "nn/lrn.hh"

#include <cmath>

#include "core/logging.hh"
#include "core/structural_hash.hh"

namespace redeye {
namespace nn {

LrnLayer::LrnLayer(std::string name, LrnParams params)
    : Layer(std::move(name)), params_(params)
{
    fatal_if(params_.localSize == 0 || params_.localSize % 2 == 0,
             "lrn '", this->name(), "': localSize must be odd");
}

Shape
LrnLayer::outputShape(const std::vector<Shape> &in) const
{
    fatal_if(in.size() != 1, "lrn '", name(), "' takes one input");
    return in[0];
}

void
LrnLayer::forward(const std::vector<const Tensor *> &in, Tensor &out,
                  ExecContext &ctx)
{
    const Tensor &x = *in[0];
    const Shape &s = x.shape();
    if (out.shape() != s)
        out = Tensor(s);
    if (scale_.shape() != s)
        scale_ = Tensor(s);

    const long half = static_cast<long>(params_.localSize / 2);
    const float alpha_n = params_.alpha /
                          static_cast<float>(params_.localSize);

    // Normalization crosses channels only; rows (n, h) are
    // independent.
    parallelFor(ctx, s.n * s.h, [&](std::size_t row) {
        const std::size_t n = row / s.h;
        const std::size_t h = row % s.h;
        {
            for (std::size_t w = 0; w < s.w; ++w) {
                for (std::size_t c = 0; c < s.c; ++c) {
                    double acc = 0.0;
                    const long lo = static_cast<long>(c) - half;
                    const long hi = static_cast<long>(c) + half;
                    for (long cc = lo; cc <= hi; ++cc) {
                        if (cc < 0 || cc >= static_cast<long>(s.c))
                            continue;
                        const float v = x.at(
                            n, static_cast<std::size_t>(cc), h, w);
                        acc += static_cast<double>(v) * v;
                    }
                    const float sc = params_.k +
                                     alpha_n *
                                         static_cast<float>(acc);
                    scale_.at(n, c, h, w) = sc;
                    out.at(n, c, h, w) =
                        x.at(n, c, h, w) /
                        std::pow(sc, params_.beta);
                }
            }
        }
    });
}

void
LrnLayer::backward(const std::vector<const Tensor *> &in,
                   const Tensor &out, const Tensor &out_grad,
                   std::vector<Tensor> &in_grads, ExecContext &ctx)
{
    const Tensor &x = *in[0];
    const Shape &s = x.shape();
    panic_if(scale_.shape() != s, "lrn '", name(),
             "' backward without forward");
    Tensor &dx = in_grads[0];

    const long half = static_cast<long>(params_.localSize / 2);
    const float alpha_n = params_.alpha /
                          static_cast<float>(params_.localSize);

    // d out[c'] / d in[c] = scale^-beta * delta(c,c')
    //     - 2 beta alpha_n in[c] out[c'] / scale[c'] (c in window c')
    parallelFor(ctx, s.n * s.h, [&](std::size_t row) {
        const std::size_t n = row / s.h;
        const std::size_t h = row % s.h;
        {
            for (std::size_t w = 0; w < s.w; ++w) {
                for (std::size_t c = 0; c < s.c; ++c) {
                    double acc =
                        out_grad.at(n, c, h, w) /
                        std::pow(scale_.at(n, c, h, w), params_.beta);
                    const long lo = static_cast<long>(c) - half;
                    const long hi = static_cast<long>(c) + half;
                    double cross = 0.0;
                    for (long cc = lo; cc <= hi; ++cc) {
                        if (cc < 0 || cc >= static_cast<long>(s.c))
                            continue;
                        const auto cu = static_cast<std::size_t>(cc);
                        cross += out_grad.at(n, cu, h, w) *
                                 out.at(n, cu, h, w) /
                                 scale_.at(n, cu, h, w);
                    }
                    acc -= 2.0 * params_.beta * alpha_n *
                           x.at(n, c, h, w) * cross;
                    dx.at(n, c, h, w) += static_cast<float>(acc);
                }
            }
        }
    });
}

void
LrnLayer::mixStructure(StructuralHasher &h) const
{
    h.mix(params_.localSize)
        .mixDouble(params_.alpha)
        .mixDouble(params_.beta)
        .mixDouble(params_.k);
}

} // namespace nn
} // namespace redeye
