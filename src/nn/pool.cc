#include "nn/pool.hh"

#include <cmath>
#include <limits>

#include "core/logging.hh"
#include "core/structural_hash.hh"

namespace redeye {
namespace nn {

std::size_t
PoolParams::outExtent(std::size_t in) const
{
    // Caffe ceil-mode pooling.
    const double num = static_cast<double>(in + 2 * pad - kernel);
    auto out = static_cast<std::size_t>(
        std::ceil(num / static_cast<double>(stride))) + 1;
    // Clip the last window so it starts inside the (padded) input.
    if (pad > 0 && (out - 1) * stride >= in + pad)
        --out;
    return out;
}

namespace {

void
validate(const char *what, const std::string &name,
         const PoolParams &params, const std::vector<Shape> &in)
{
    fatal_if(in.size() != 1, what, " '", name, "' takes one input");
    fatal_if(params.kernel == 0 || params.stride == 0, what, " '", name,
             "': kernel and stride must be positive");
    fatal_if(in[0].h + 2 * params.pad < params.kernel ||
                 in[0].w + 2 * params.pad < params.kernel,
             what, " '", name, "': window larger than padded input ",
             in[0].str());
}

} // namespace

MaxPoolLayer::MaxPoolLayer(std::string name, PoolParams params)
    : Layer(std::move(name)), params_(params)
{
}

Shape
MaxPoolLayer::outputShape(const std::vector<Shape> &in) const
{
    validate("maxpool", name(), params_, in);
    return Shape(in[0].n, in[0].c, params_.outExtent(in[0].h),
                 params_.outExtent(in[0].w));
}

void
MaxPoolLayer::forward(const std::vector<const Tensor *> &in, Tensor &out,
                      ExecContext &ctx)
{
    const Tensor &x = *in[0];
    const Shape &is = x.shape();
    // Shape math inline; the validating outputShape() only runs when
    // the output must be (re)built, keeping the steady-state forward
    // free of the temporary shape vector (and of any allocation).
    const Shape os(is.n, is.c, params_.outExtent(is.h),
                   params_.outExtent(is.w));
    if (out.shape() != os)
        out = Tensor(outputShape({is}));
    argmax_.assign(os.size(), 0);

    // Each (item, channel) plane is independent.
    parallelFor(ctx, os.n * os.c, [&](std::size_t plane) {
        const std::size_t n = plane / os.c;
        const std::size_t c = plane % os.c;
        {
            for (std::size_t oh = 0; oh < os.h; ++oh) {
                for (std::size_t ow = 0; ow < os.w; ++ow) {
                    const long h0 = static_cast<long>(oh *
                                                      params_.stride) -
                                    static_cast<long>(params_.pad);
                    const long w0 = static_cast<long>(ow *
                                                      params_.stride) -
                                    static_cast<long>(params_.pad);
                    float best =
                        -std::numeric_limits<float>::infinity();
                    std::size_t best_idx = 0;
                    for (std::size_t kh = 0; kh < params_.kernel; ++kh) {
                        const long ih = h0 + static_cast<long>(kh);
                        if (ih < 0 || ih >= static_cast<long>(is.h))
                            continue;
                        for (std::size_t kw = 0; kw < params_.kernel;
                             ++kw) {
                            const long iw = w0 + static_cast<long>(kw);
                            if (iw < 0 ||
                                iw >= static_cast<long>(is.w)) {
                                continue;
                            }
                            const std::size_t idx = is.index(
                                n, c, static_cast<std::size_t>(ih),
                                static_cast<std::size_t>(iw));
                            if (x[idx] > best) {
                                best = x[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    const std::size_t oidx = os.index(n, c, oh, ow);
                    out[oidx] = best;
                    argmax_[oidx] = best_idx;
                }
            }
        }
    });
}

void
MaxPoolLayer::backward(const std::vector<const Tensor *> &in,
                       const Tensor &out, const Tensor &out_grad,
                       std::vector<Tensor> &in_grads, ExecContext &ctx)
{
    (void)in;
    panic_if(argmax_.size() != out.size(),
             "maxpool '", name(), "' backward without forward");
    Tensor &dx = in_grads[0];
    // Overlapping windows may scatter to the same input cell, but
    // only within one batch item: parallelize over items.
    const Shape &os = out.shape();
    const std::size_t per_item = os.c * os.h * os.w;
    parallelFor(ctx, os.n, [&](std::size_t n) {
        const std::size_t begin = n * per_item;
        for (std::size_t i = begin; i < begin + per_item; ++i)
            dx[argmax_[i]] += out_grad[i];
    });
}

std::size_t
MaxPoolLayer::comparisonCount(const std::vector<Shape> &in) const
{
    const Shape os = outputShape(in);
    return os.size() * (params_.kernel * params_.kernel - 1);
}

void
MaxPoolLayer::mixStructure(StructuralHasher &h) const
{
    h.mix(params_.kernel).mix(params_.stride).mix(params_.pad);
}

AvgPoolLayer::AvgPoolLayer(std::string name, PoolParams params)
    : Layer(std::move(name)), params_(params)
{
}

Shape
AvgPoolLayer::outputShape(const std::vector<Shape> &in) const
{
    validate("avgpool", name(), params_, in);
    return Shape(in[0].n, in[0].c, params_.outExtent(in[0].h),
                 params_.outExtent(in[0].w));
}

void
AvgPoolLayer::forward(const std::vector<const Tensor *> &in, Tensor &out,
                      ExecContext &ctx)
{
    const Tensor &x = *in[0];
    const Shape &is = x.shape();
    // See MaxPoolLayer::forward: validate only when (re)building.
    const Shape os(is.n, is.c, params_.outExtent(is.h),
                   params_.outExtent(is.w));
    if (out.shape() != os)
        out = Tensor(outputShape({is}));

    parallelFor(ctx, os.n * os.c, [&](std::size_t plane) {
        const std::size_t n = plane / os.c;
        const std::size_t c = plane % os.c;
        {
            for (std::size_t oh = 0; oh < os.h; ++oh) {
                for (std::size_t ow = 0; ow < os.w; ++ow) {
                    const long h0 = static_cast<long>(oh *
                                                      params_.stride) -
                                    static_cast<long>(params_.pad);
                    const long w0 = static_cast<long>(ow *
                                                      params_.stride) -
                                    static_cast<long>(params_.pad);
                    double acc = 0.0;
                    std::size_t count = 0;
                    for (std::size_t kh = 0; kh < params_.kernel; ++kh) {
                        const long ih = h0 + static_cast<long>(kh);
                        if (ih < 0 || ih >= static_cast<long>(is.h))
                            continue;
                        for (std::size_t kw = 0; kw < params_.kernel;
                             ++kw) {
                            const long iw = w0 + static_cast<long>(kw);
                            if (iw < 0 ||
                                iw >= static_cast<long>(is.w)) {
                                continue;
                            }
                            acc += x.at(n, c,
                                        static_cast<std::size_t>(ih),
                                        static_cast<std::size_t>(iw));
                            ++count;
                        }
                    }
                    out.at(n, c, oh, ow) =
                        count ? static_cast<float>(acc /
                                                   static_cast<double>(
                                                       count))
                              : 0.0f;
                }
            }
        }
    });
}

void
AvgPoolLayer::backward(const std::vector<const Tensor *> &in,
                       const Tensor &out, const Tensor &out_grad,
                       std::vector<Tensor> &in_grads, ExecContext &ctx)
{
    const Tensor &x = *in[0];
    const Shape &is = x.shape();
    const Shape &os = out.shape();
    Tensor &dx = in_grads[0];

    // Windows overlap spatially but never across (item, channel)
    // planes: parallelize over planes.
    parallelFor(ctx, os.n * os.c, [&](std::size_t plane) {
        const std::size_t n = plane / os.c;
        const std::size_t c = plane % os.c;
        {
            for (std::size_t oh = 0; oh < os.h; ++oh) {
                for (std::size_t ow = 0; ow < os.w; ++ow) {
                    const long h0 = static_cast<long>(oh *
                                                      params_.stride) -
                                    static_cast<long>(params_.pad);
                    const long w0 = static_cast<long>(ow *
                                                      params_.stride) -
                                    static_cast<long>(params_.pad);
                    std::size_t count = 0;
                    for (std::size_t kh = 0; kh < params_.kernel; ++kh) {
                        const long ih = h0 + static_cast<long>(kh);
                        if (ih < 0 || ih >= static_cast<long>(is.h))
                            continue;
                        for (std::size_t kw = 0; kw < params_.kernel;
                             ++kw) {
                            const long iw = w0 + static_cast<long>(kw);
                            if (iw >= 0 && iw < static_cast<long>(is.w))
                                ++count;
                        }
                    }
                    if (count == 0)
                        continue;
                    const float g = out_grad.at(n, c, oh, ow) /
                                    static_cast<float>(count);
                    for (std::size_t kh = 0; kh < params_.kernel; ++kh) {
                        const long ih = h0 + static_cast<long>(kh);
                        if (ih < 0 || ih >= static_cast<long>(is.h))
                            continue;
                        for (std::size_t kw = 0; kw < params_.kernel;
                             ++kw) {
                            const long iw = w0 + static_cast<long>(kw);
                            if (iw < 0 ||
                                iw >= static_cast<long>(is.w)) {
                                continue;
                            }
                            dx.at(n, c, static_cast<std::size_t>(ih),
                                  static_cast<std::size_t>(iw)) += g;
                        }
                    }
                }
            }
        }
    });
}

void
AvgPoolLayer::mixStructure(StructuralHasher &h) const
{
    h.mix(params_.kernel).mix(params_.stride).mix(params_.pad);
}

} // namespace nn
} // namespace redeye
