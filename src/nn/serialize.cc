#include "nn/serialize.hh"

#include <cstdint>
#include <fstream>

#include "core/logging.hh"
#include "nn/network.hh"

namespace redeye {
namespace nn {

namespace {

constexpr std::uint32_t kMagic = 0x52454457; // "REDW"
constexpr std::uint32_t kVersion = 1;

void
writeU32(std::ostream &os, std::uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

std::uint32_t
readU32(std::istream &is)
{
    std::uint32_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    fatal_if(!is, "truncated weight stream");
    return v;
}

void
writeString(std::ostream &os, const std::string &s)
{
    writeU32(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::istream &is)
{
    const auto len = readU32(is);
    std::string s(len, '\0');
    is.read(s.data(), len);
    fatal_if(!is, "truncated weight stream");
    return s;
}

struct ParamRef {
    std::string key;
    Tensor *tensor;
};

std::vector<ParamRef>
collect(Network &net)
{
    std::vector<ParamRef> refs;
    for (std::size_t i = 0; i < net.size(); ++i) {
        Layer &layer = net.layerAt(i);
        auto params = layer.params();
        for (std::size_t k = 0; k < params.size(); ++k) {
            refs.push_back(
                {layer.name() + "#" + std::to_string(k), params[k]});
        }
    }
    return refs;
}

} // namespace

void
saveWeights(Network &net, std::ostream &os)
{
    auto refs = collect(net);
    writeU32(os, kMagic);
    writeU32(os, kVersion);
    writeU32(os, static_cast<std::uint32_t>(refs.size()));
    for (const auto &ref : refs) {
        writeString(os, ref.key);
        const Shape &s = ref.tensor->shape();
        writeU32(os, static_cast<std::uint32_t>(s.n));
        writeU32(os, static_cast<std::uint32_t>(s.c));
        writeU32(os, static_cast<std::uint32_t>(s.h));
        writeU32(os, static_cast<std::uint32_t>(s.w));
        os.write(reinterpret_cast<const char *>(ref.tensor->data()),
                 static_cast<std::streamsize>(ref.tensor->size() *
                                              sizeof(float)));
    }
    fatal_if(!os, "failed writing weight stream");
}

void
saveWeights(Network &net, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    fatal_if(!os, "cannot open '", path, "' for writing");
    saveWeights(net, os);
}

void
loadWeights(Network &net, std::istream &is)
{
    auto refs = collect(net);
    fatal_if(readU32(is) != kMagic, "not a RedEye weight stream");
    fatal_if(readU32(is) != kVersion, "unsupported weight version");
    const auto count = readU32(is);
    fatal_if(count != refs.size(), "weight stream has ", count,
             " tensors; network expects ", refs.size());

    for (std::uint32_t i = 0; i < count; ++i) {
        const std::string key = readString(is);
        fatal_if(key != refs[i].key, "weight stream tensor '", key,
                 "' does not match expected '", refs[i].key, "'");
        Shape s;
        s.n = readU32(is);
        s.c = readU32(is);
        s.h = readU32(is);
        s.w = readU32(is);
        fatal_if(!(s == refs[i].tensor->shape()), "tensor '", key,
                 "' shape ", s.str(), " != expected ",
                 refs[i].tensor->shape().str());
        is.read(reinterpret_cast<char *>(refs[i].tensor->data()),
                static_cast<std::streamsize>(refs[i].tensor->size() *
                                             sizeof(float)));
        fatal_if(!is, "truncated weight stream");
    }
}

void
loadWeights(Network &net, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    fatal_if(!is, "cannot open '", path, "' for reading");
    loadWeights(net, is);
}

std::size_t
copyWeightsByName(Network &dst, Network &src)
{
    std::size_t copied = 0;
    for (std::size_t i = 0; i < dst.size(); ++i) {
        Layer &layer = dst.layerAt(i);
        if (!src.hasLayer(layer.name()))
            continue;
        Layer &from = src.layer(layer.name());
        auto dst_params = layer.params();
        auto src_params = from.params();
        fatal_if(dst_params.size() != src_params.size(),
                 "layer '", layer.name(),
                 "' parameter count differs between networks");
        for (std::size_t k = 0; k < dst_params.size(); ++k) {
            fatal_if(!(dst_params[k]->shape() ==
                       src_params[k]->shape()),
                     "layer '", layer.name(), "' parameter ", k,
                     " shape mismatch: ",
                     dst_params[k]->shape().str(), " vs ",
                     src_params[k]->shape().str());
            dst_params[k]->vec() = src_params[k]->vec();
            ++copied;
        }
    }
    return copied;
}

} // namespace nn
} // namespace redeye
