#include "nn/inner_product.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"
#include "core/structural_hash.hh"
#include "core/rng.hh"
#include "tensor/kernels.hh"

namespace redeye {
namespace nn {

InnerProductLayer::InnerProductLayer(std::string name,
                                     std::size_t outputs, bool bias)
    : Layer(std::move(name)), outputs_(outputs), bias_(bias)
{
    fatal_if(outputs_ == 0, "fc '", this->name(),
             "': outputs must be positive");
}

void
InnerProductLayer::materialize(std::size_t inputs) const
{
    const Shape wshape(outputs_, inputs, 1, 1);
    if (weights_.shape() == wshape)
        return;
    panic_if(!weights_.empty(), "fc '", name(),
             "' rebound to a different input size");
    weights_ = Tensor(wshape);
    weightGrad_ = Tensor(wshape);
    if (bias_) {
        biases_ = Tensor(Shape(1, outputs_, 1, 1));
        biasGrad_ = Tensor(Shape(1, outputs_, 1, 1));
    }
}

Shape
InnerProductLayer::outputShape(const std::vector<Shape> &in) const
{
    fatal_if(in.size() != 1, "fc '", name(), "' takes one input");
    materialize(in[0].sliceSize());
    return Shape(in[0].n, outputs_, 1, 1);
}

void
InnerProductLayer::forward(const std::vector<const Tensor *> &in,
                           Tensor &out, ExecContext &ctx)
{
    const Tensor &x = *in[0];
    const std::size_t batch = x.shape().n;
    const std::size_t inputs = x.shape().sliceSize();
    materialize(inputs);
    const Shape os(batch, outputs_, 1, 1);
    if (out.shape() != os)
        out = Tensor(os);

    // Each output row depends only on its own input row, so both
    // paths below are bit-identical at any thread count (chunking
    // only splits rows). The reference backend keeps the historical
    // per-item GEMV call shape — its rounding sequence is part of the
    // backend's bit-reproducibility contract — while the blocked
    // backend batches the chunk into one GEMM.
    if (kernels::backend() == kernels::Backend::Reference) {
        parallelFor(ctx, batch, [&](std::size_t n) {
            const float *xi = x.data() + n * inputs;
            float *oi = out.data() + n * outputs_;
            // out = W[outputs x inputs] * x, bias per output row.
            kernels::gemm(
                weights_.data(), kernels::MatShape{outputs_, inputs},
                xi, kernels::MatShape{inputs, 1}, oi,
                bias_ ? kernels::Epilogue::biasPerRow(biases_.data())
                      : kernels::Epilogue{});
        });
    } else {
        parallelForChunks(ctx, batch, [&](std::size_t n0,
                                          std::size_t n1,
                                          std::size_t lane) {
            const std::size_t nb = n1 - n0;
            // Out[nb x outputs] = X[nb x inputs] * W^T, bias per
            // column.
            kernels::gemmTransB(
                x.data() + n0 * inputs, kernels::MatShape{nb, inputs},
                weights_.data(), kernels::MatShape{outputs_, inputs},
                out.data() + n0 * outputs_,
                bias_ ? kernels::Epilogue::biasPerCol(biases_.data())
                      : kernels::Epilogue{},
                ctx, lane);
        });
    }
}

void
InnerProductLayer::backward(const std::vector<const Tensor *> &in,
                            const Tensor &out, const Tensor &out_grad,
                            std::vector<Tensor> &in_grads,
                            ExecContext &ctx)
{
    (void)out;
    const Tensor &x = *in[0];
    const std::size_t batch = x.shape().n;
    const std::size_t inputs = x.shape().sliceSize();
    Tensor &dx = in_grads[0];

    if (batch == 0)
        return;

    // dx rows are disjoint per item; dW/db accumulate into per-chunk
    // scratch (persistent across calls for capacity reuse), reduced
    // in chunk order below.
    const std::size_t slots = std::min(ctx.threads(), batch);
    if (dwSlots_.size() < slots) {
        dwSlots_.resize(slots);
        dbSlots_.resize(slots);
    }

    parallelForChunks(ctx, batch, [&](std::size_t n0, std::size_t n1,
                                      std::size_t slot) {
        auto &dw_acc = dwSlots_[slot];
        dw_acc.assign(weightGrad_.size(), 0.0f);
        auto &db_acc = dbSlots_[slot];
        if (bias_)
            db_acc.assign(outputs_, 0.0f);

        const std::size_t nb = n1 - n0;
        const float *xc = x.data() + n0 * inputs;
        const float *gc = out_grad.data() + n0 * outputs_;

        // dW[outputs x inputs] += G^T[outputs x nb] * X[nb x inputs],
        // one chunk-wide GEMM replacing the per-item outer products.
        kernels::gemmTransA(gc, kernels::MatShape{nb, outputs_}, xc,
                            kernels::MatShape{nb, inputs},
                            dw_acc.data(),
                            kernels::Epilogue::accumulateInto(), ctx,
                            slot);
        if (bias_) {
            for (std::size_t n = 0; n < nb; ++n) {
                const float *go = gc + n * outputs_;
                for (std::size_t o = 0; o < outputs_; ++o)
                    db_acc[o] += go[o];
            }
        }

        // dX[nb x inputs] += G[nb x outputs] * W[outputs x inputs].
        // This is the direct-path accumulate combination the
        // eligibility predicate pins down (kernels.cc).
        kernels::gemm(gc, kernels::MatShape{nb, outputs_},
                      weights_.data(),
                      kernels::MatShape{outputs_, inputs},
                      dx.data() + n0 * inputs,
                      kernels::Epilogue::accumulateInto(), ctx, slot);
    });

    for (std::size_t s = 0; s < slots; ++s) {
        for (std::size_t i = 0; i < weightGrad_.size(); ++i)
            weightGrad_[i] += dwSlots_[s][i];
        if (bias_) {
            for (std::size_t o = 0; o < outputs_; ++o)
                biasGrad_[o] += dbSlots_[s][o];
        }
    }
}

std::vector<Tensor *>
InnerProductLayer::params()
{
    std::vector<Tensor *> out{&weights_};
    if (bias_)
        out.push_back(&biases_);
    return out;
}

std::vector<Tensor *>
InnerProductLayer::paramGrads()
{
    std::vector<Tensor *> out{&weightGrad_};
    if (bias_)
        out.push_back(&biasGrad_);
    return out;
}

std::size_t
InnerProductLayer::macCount(const std::vector<Shape> &in) const
{
    return in[0].n * outputs_ * in[0].sliceSize();
}

void
InnerProductLayer::initHe(Rng &rng)
{
    panic_if(weights_.empty(), "fc '", name(),
             "' not materialized; add it to a network first");
    const double fan_in = static_cast<double>(weights_.shape().c);
    const double stddev = std::sqrt(2.0 / fan_in);
    weights_.fillGaussian(rng, 0.0f, static_cast<float>(stddev));
    if (bias_)
        biases_.zero();
}

void
InnerProductLayer::mixStructure(StructuralHasher &h) const
{
    // The output count is shape-derivable, but the bias toggle is
    // not: with and without bias the shapes agree exactly.
    h.mix(outputs_).mix(bias_ ? 1 : 0);
}

} // namespace nn
} // namespace redeye
