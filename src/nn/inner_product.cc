#include "nn/inner_product.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"
#include "core/rng.hh"
#include "tensor/im2col.hh"

namespace redeye {
namespace nn {

InnerProductLayer::InnerProductLayer(std::string name,
                                     std::size_t outputs, bool bias)
    : Layer(std::move(name)), outputs_(outputs), bias_(bias)
{
    fatal_if(outputs_ == 0, "fc '", this->name(),
             "': outputs must be positive");
}

void
InnerProductLayer::materialize(std::size_t inputs) const
{
    const Shape wshape(outputs_, inputs, 1, 1);
    if (weights_.shape() == wshape)
        return;
    panic_if(!weights_.empty(), "fc '", name(),
             "' rebound to a different input size");
    weights_ = Tensor(wshape);
    weightGrad_ = Tensor(wshape);
    if (bias_) {
        biases_ = Tensor(Shape(1, outputs_, 1, 1));
        biasGrad_ = Tensor(Shape(1, outputs_, 1, 1));
    }
}

Shape
InnerProductLayer::outputShape(const std::vector<Shape> &in) const
{
    fatal_if(in.size() != 1, "fc '", name(), "' takes one input");
    materialize(in[0].sliceSize());
    return Shape(in[0].n, outputs_, 1, 1);
}

void
InnerProductLayer::forward(const std::vector<const Tensor *> &in,
                           Tensor &out, ExecContext &ctx)
{
    const Tensor &x = *in[0];
    const std::size_t batch = x.shape().n;
    const std::size_t inputs = x.shape().sliceSize();
    const Shape os = outputShape({x.shape()});
    if (out.shape() != os)
        out = Tensor(os);

    parallelFor(ctx, batch, [&](std::size_t n) {
        const float *xi = x.data() + n * inputs;
        float *oi = out.data() + n * outputs_;
        // out = W[outputs x inputs] * x.
        matmul(weights_.data(), xi, oi, outputs_, inputs, 1);
        if (bias_) {
            for (std::size_t o = 0; o < outputs_; ++o)
                oi[o] += biases_[o];
        }
    });
}

void
InnerProductLayer::backward(const std::vector<const Tensor *> &in,
                            const Tensor &out, const Tensor &out_grad,
                            std::vector<Tensor> &in_grads,
                            ExecContext &ctx)
{
    (void)out;
    const Tensor &x = *in[0];
    const std::size_t batch = x.shape().n;
    const std::size_t inputs = x.shape().sliceSize();
    Tensor &dx = in_grads[0];

    // dx rows are disjoint per item; dW/db accumulate into per-chunk
    // scratch, reduced in chunk order below.
    const std::size_t slots = std::min(ctx.threads(),
                                       std::max<std::size_t>(batch, 1));
    std::vector<std::vector<float>> dw_slots(slots);
    std::vector<std::vector<float>> db_slots(slots);

    parallelForChunks(ctx, batch, [&](std::size_t n0, std::size_t n1,
                                      std::size_t slot) {
        auto &dw_acc = dw_slots[slot];
        dw_acc.assign(weightGrad_.size(), 0.0f);
        auto &db_acc = db_slots[slot];
        if (bias_)
            db_acc.assign(outputs_, 0.0f);

        for (std::size_t n = n0; n < n1; ++n) {
            const float *xi = x.data() + n * inputs;
            const float *go = out_grad.data() + n * outputs_;
            float *dxi = dx.data() + n * inputs;

            // dW += g * x^T  (outer product).
            for (std::size_t o = 0; o < outputs_; ++o) {
                const float g = go[o];
                if (g == 0.0f)
                    continue;
                float *dwrow = dw_acc.data() + o * inputs;
                for (std::size_t i = 0; i < inputs; ++i)
                    dwrow[i] += g * xi[i];
                if (bias_)
                    db_acc[o] += g;
            }

            // dx += W^T * g.
            matmulTransA(weights_.data(), go, dxi, inputs, outputs_, 1,
                         true);
        }
    });

    for (std::size_t s = 0; s < slots; ++s) {
        if (dw_slots[s].empty())
            continue;
        for (std::size_t i = 0; i < weightGrad_.size(); ++i)
            weightGrad_[i] += dw_slots[s][i];
        if (bias_) {
            for (std::size_t o = 0; o < outputs_; ++o)
                biasGrad_[o] += db_slots[s][o];
        }
    }
}

std::vector<Tensor *>
InnerProductLayer::params()
{
    std::vector<Tensor *> out{&weights_};
    if (bias_)
        out.push_back(&biases_);
    return out;
}

std::vector<Tensor *>
InnerProductLayer::paramGrads()
{
    std::vector<Tensor *> out{&weightGrad_};
    if (bias_)
        out.push_back(&biasGrad_);
    return out;
}

std::size_t
InnerProductLayer::macCount(const std::vector<Shape> &in) const
{
    return in[0].n * outputs_ * in[0].sliceSize();
}

void
InnerProductLayer::initHe(Rng &rng)
{
    panic_if(weights_.empty(), "fc '", name(),
             "' not materialized; add it to a network first");
    const double fan_in = static_cast<double>(weights_.shape().c);
    const double stddev = std::sqrt(2.0 / fan_in);
    weights_.fillGaussian(rng, 0.0f, static_cast<float>(stddev));
    if (bias_)
        biases_.zero();
}

} // namespace nn
} // namespace redeye
