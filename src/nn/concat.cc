#include "nn/concat.hh"

#include <cstring>

#include "core/logging.hh"

namespace redeye {
namespace nn {

Shape
ConcatLayer::outputShape(const std::vector<Shape> &in) const
{
    fatal_if(in.empty(), "concat '", name(), "' needs inputs");
    Shape out = in[0];
    for (std::size_t i = 1; i < in.size(); ++i) {
        fatal_if(in[i].n != out.n || in[i].h != out.h ||
                     in[i].w != out.w,
                 "concat '", name(), "': input ", i, " shape ",
                 in[i].str(), " incompatible with ", out.str());
        out.c += in[i].c;
    }
    return out;
}

void
ConcatLayer::forward(const std::vector<const Tensor *> &in, Tensor &out,
                     ExecContext &ctx)
{
    // Shape math inline (validated in outputShape at build time), so
    // the steady-state forward allocates nothing.
    const Shape &first = in[0]->shape();
    Shape os = first;
    for (std::size_t i = 1; i < in.size(); ++i) {
        const Shape &s = in[i]->shape();
        fatal_if(s.n != first.n || s.h != first.h || s.w != first.w,
                 "concat '", name(), "': input ", i, " shape ",
                 s.str(), " incompatible with ", first.str());
        os.c += s.c;
    }
    if (out.shape() != os)
        out = Tensor(os);

    parallelFor(ctx, os.n, [&](std::size_t n) {
        std::size_t c_off = 0;
        for (const Tensor *t : in) {
            const Shape &is = t->shape();
            const std::size_t bytes = is.sliceSize() * sizeof(float);
            std::memcpy(out.data() + os.index(n, c_off, 0, 0),
                        t->data() + is.index(n, 0, 0, 0), bytes);
            c_off += is.c;
        }
    });
}

void
ConcatLayer::backward(const std::vector<const Tensor *> &in,
                      const Tensor &out, const Tensor &out_grad,
                      std::vector<Tensor> &in_grads, ExecContext &ctx)
{
    const Shape &os = out.shape();
    parallelFor(ctx, os.n, [&](std::size_t n) {
        std::size_t c_off = 0;
        for (std::size_t i = 0; i < in.size(); ++i) {
            const Shape &is = in[i]->shape();
            const std::size_t count = is.sliceSize();
            const float *src = out_grad.data() +
                               os.index(n, c_off, 0, 0);
            float *dst = in_grads[i].data() + is.index(n, 0, 0, 0);
            for (std::size_t j = 0; j < count; ++j)
                dst[j] += src[j];
            c_off += is.c;
        }
    });
}

} // namespace nn
} // namespace redeye
