/**
 * @file
 * 2-D convolution layer (stride, zero padding, channel groups).
 *
 * Forward is computed by im2col + matrix product per batch item. The
 * layer optionally applies output clipping at a configurable signal
 * swing, mirroring RedEye's convolutional module, which "clips signals
 * at maximum swing to perform nonlinear rectification".
 */

#ifndef REDEYE_NN_CONV_HH
#define REDEYE_NN_CONV_HH

#include <optional>
#include <vector>

#include "nn/layer.hh"
#include "tensor/im2col.hh"
#include "tensor/kernels.hh"

namespace redeye {

class Rng;

namespace nn {

/** Static configuration of a convolution layer. */
struct ConvParams {
    std::size_t outChannels = 1;
    std::size_t kernelH = 1;
    std::size_t kernelW = 1;
    std::size_t strideH = 1;
    std::size_t strideW = 1;
    std::size_t padH = 0;
    std::size_t padW = 0;
    std::size_t groups = 1;
    bool bias = true;

    /** Square-kernel convenience builder. */
    static ConvParams
    square(std::size_t out_channels, std::size_t kernel,
           std::size_t stride = 1, std::size_t pad = 0,
           std::size_t groups = 1)
    {
        ConvParams p;
        p.outChannels = out_channels;
        p.kernelH = p.kernelW = kernel;
        p.strideH = p.strideW = stride;
        p.padH = p.padW = pad;
        p.groups = groups;
        return p;
    }
};

/** Convolution layer with trainable kernel and bias. */
class ConvolutionLayer : public Layer
{
  public:
    ConvolutionLayer(std::string name, ConvParams params);

    LayerKind kind() const override { return LayerKind::Convolution; }

    Shape outputShape(const std::vector<Shape> &in) const override;

    using Layer::forward;
    using Layer::backward;

    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 ExecContext &ctx) override;

    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &out_grad,
                  std::vector<Tensor> &in_grads,
                  ExecContext &ctx) override;

    std::vector<Tensor *> params() override;
    std::vector<Tensor *> paramGrads() override;

    std::size_t macCount(const std::vector<Shape> &in) const override;

    void mixStructure(StructuralHasher &h) const override;

    const ConvParams &convParams() const { return params_; }

    /** Kernel weights as (outC, inC/groups, kh, kw). */
    Tensor &weights() { return weights_; }
    const Tensor &weights() const { return weights_; }

    /** Bias vector as (1, outC, 1, 1); empty when bias is disabled. */
    Tensor &biases() { return biases_; }
    const Tensor &biases() const { return biases_; }

    /**
     * Clip outputs into [-swing, +swing], modelling the analog signal
     * range limit. Disabled by default (digital reference behaviour).
     */
    void setOutputClip(std::optional<float> swing) { clip_ = swing; }

    std::optional<float> outputClip() const { return clip_; }

    /** He-initialize weights and zero biases. */
    void initHe(Rng &rng);

  private:
    /** Bind parameter tensors once the input channel count is known. */
    void materialize(std::size_t in_channels) const;

    /** outputShape for a single input, with the validity checks. */
    Shape outputShapeFor(const Shape &s) const;

    ConvParams params_;
    WindowParams window_;
    mutable Tensor weights_;
    mutable Tensor biases_;
    mutable Tensor weightGrad_;
    mutable Tensor biasGrad_;
    std::optional<float> clip_;

    // Per-chunk parameter-gradient scratch, kept across backward()
    // calls so steady-state training iterations reuse capacity.
    std::vector<std::vector<float>> dwSlots_;
    std::vector<std::vector<double>> dbSlots_;

    // (item, group) problem list for the batched-lowering forward
    // path, kept across calls so steady-state batches reuse capacity.
    std::vector<kernels::GemmProblem> probs_;
};

} // namespace nn
} // namespace redeye

#endif // REDEYE_NN_CONV_HH
