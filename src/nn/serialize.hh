/**
 * @file
 * Binary parameter serialization.
 *
 * Saves/loads every parameter tensor of a network keyed by layer name
 * and parameter index, so examples can train once and reuse weights.
 * The format is a simple tagged binary stream; load validates shapes.
 */

#ifndef REDEYE_NN_SERIALIZE_HH
#define REDEYE_NN_SERIALIZE_HH

#include <iosfwd>
#include <string>

namespace redeye {
namespace nn {

class Network;

/** Write all parameters of @p net to @p os. */
void saveWeights(Network &net, std::ostream &os);

/** Write all parameters of @p net to the named file (fatal on error). */
void saveWeights(Network &net, const std::string &path);

/**
 * Read parameters into @p net from @p is. Layer names and shapes must
 * match exactly (fatal otherwise).
 */
void loadWeights(Network &net, std::istream &is);

/** Read parameters from the named file (fatal on error). */
void loadWeights(Network &net, const std::string &path);

/**
 * Copy parameters from @p src into every layer of @p dst that has a
 * same-named counterpart in @p src (shapes must match; fatal
 * otherwise). Layers of @p dst absent from @p src are left as-is.
 * Used to initialize a subnetwork (e.g. an analog prefix) from a
 * trained full network.
 *
 * @return Number of parameter tensors copied.
 */
std::size_t copyWeightsByName(Network &dst, Network &src);

} // namespace nn
} // namespace redeye

#endif // REDEYE_NN_SERIALIZE_HH
