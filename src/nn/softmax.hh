/**
 * @file
 * Softmax layer and softmax-cross-entropy loss.
 *
 * SoftmaxLayer normalizes each batch item's channel vector into a
 * probability distribution. softmaxCrossEntropy() fuses the softmax
 * with a cross-entropy loss over integer labels, returning the mean
 * loss and the gradient with respect to the logits — the numerically
 * stable formulation used by the trainer.
 */

#ifndef REDEYE_NN_SOFTMAX_HH
#define REDEYE_NN_SOFTMAX_HH

#include <cstdint>
#include <vector>

#include "nn/layer.hh"

namespace redeye {
namespace nn {

/** Per-item channel softmax. */
class SoftmaxLayer : public Layer
{
  public:
    explicit SoftmaxLayer(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::Softmax; }

    Shape outputShape(const std::vector<Shape> &in) const override;

    using Layer::forward;
    using Layer::backward;

    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 ExecContext &ctx) override;

    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &out_grad,
                  std::vector<Tensor> &in_grads,
                  ExecContext &ctx) override;
};

/**
 * Mean softmax-cross-entropy loss over a batch of logits.
 *
 * @param logits Shape (n, classes, 1, 1).
 * @param labels One integer class per batch item.
 * @param grad Output gradient w.r.t. the logits (resized).
 * @return Mean loss over the batch.
 */
double softmaxCrossEntropy(const Tensor &logits,
                           const std::vector<std::int32_t> &labels,
                           Tensor &grad);

/**
 * True if the ground-truth label is among the top-n scoring classes.
 * Ties are broken toward lower class indices.
 */
bool topNContains(const float *scores, std::size_t classes,
                  std::int32_t label, std::size_t n);

} // namespace nn
} // namespace redeye

#endif // REDEYE_NN_SOFTMAX_HH
