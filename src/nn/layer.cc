#include "nn/layer.hh"

#include "core/logging.hh"

namespace redeye {
namespace nn {

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Input: return "Input";
      case LayerKind::Convolution: return "Convolution";
      case LayerKind::ReLU: return "ReLU";
      case LayerKind::MaxPool: return "MaxPool";
      case LayerKind::AvgPool: return "AvgPool";
      case LayerKind::LRN: return "LRN";
      case LayerKind::Concat: return "Concat";
      case LayerKind::InnerProduct: return "InnerProduct";
      case LayerKind::Dropout: return "Dropout";
      case LayerKind::Softmax: return "Softmax";
      case LayerKind::GaussianNoise: return "GaussianNoise";
      case LayerKind::QuantizationNoise: return "QuantizationNoise";
      case LayerKind::Custom: return "Custom";
    }
    return "?";
}

void
Layer::backward(const std::vector<const Tensor *> &in, const Tensor &out,
                const Tensor &out_grad, std::vector<Tensor> &in_grads,
                ExecContext &ctx)
{
    (void)in;
    (void)out;
    (void)out_grad;
    (void)in_grads;
    (void)ctx;
    panic("layer '", name_, "' (", layerKindName(kind()),
          ") does not implement backward()");
}

} // namespace nn
} // namespace redeye
