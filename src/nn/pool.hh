/**
 * @file
 * Spatial pooling layers (max and average).
 *
 * Pooling windows follow Caffe's ceil-mode semantics (GoogLeNet's
 * pool layers rely on it): the output extent is
 * ceil((in + 2*pad - kernel) / stride) + 1, and windows are clipped to
 * the padded input.
 */

#ifndef REDEYE_NN_POOL_HH
#define REDEYE_NN_POOL_HH

#include <vector>

#include "nn/layer.hh"

namespace redeye {
namespace nn {

/** Static configuration for pooling. */
struct PoolParams {
    std::size_t kernel = 2;
    std::size_t stride = 2;
    std::size_t pad = 0;

    std::size_t outExtent(std::size_t in) const;
};

/** Max pooling: propagate the largest response in the window. */
class MaxPoolLayer : public Layer
{
  public:
    MaxPoolLayer(std::string name, PoolParams params);

    LayerKind kind() const override { return LayerKind::MaxPool; }

    Shape outputShape(const std::vector<Shape> &in) const override;

    using Layer::forward;
    using Layer::backward;

    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 ExecContext &ctx) override;

    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &out_grad,
                  std::vector<Tensor> &in_grads,
                  ExecContext &ctx) override;

    void mixStructure(StructuralHasher &h) const override;

    const PoolParams &poolParams() const { return params_; }

    /** Comparator invocations per forward pass (RedEye workload). */
    std::size_t comparisonCount(const std::vector<Shape> &in) const;

  private:
    PoolParams params_;
    std::vector<std::size_t> argmax_; ///< forward cache for backward
};

/** Average pooling over the window. */
class AvgPoolLayer : public Layer
{
  public:
    AvgPoolLayer(std::string name, PoolParams params);

    LayerKind kind() const override { return LayerKind::AvgPool; }

    Shape outputShape(const std::vector<Shape> &in) const override;

    using Layer::forward;
    using Layer::backward;

    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 ExecContext &ctx) override;

    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &out_grad,
                  std::vector<Tensor> &in_grads,
                  ExecContext &ctx) override;

    void mixStructure(StructuralHasher &h) const override;

    const PoolParams &poolParams() const { return params_; }

  private:
    PoolParams params_;
};

} // namespace nn
} // namespace redeye

#endif // REDEYE_NN_POOL_HH
