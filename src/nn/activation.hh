/**
 * @file
 * Pointwise nonlinearity layers.
 */

#ifndef REDEYE_NN_ACTIVATION_HH
#define REDEYE_NN_ACTIVATION_HH

#include "nn/layer.hh"

namespace redeye {
namespace nn {

/** Rectified linear unit: out = max(0, in). */
class ReluLayer : public Layer
{
  public:
    explicit ReluLayer(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::ReLU; }

    Shape outputShape(const std::vector<Shape> &in) const override;

    using Layer::forward;
    using Layer::backward;

    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 ExecContext &ctx) override;

    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &out_grad,
                  std::vector<Tensor> &in_grads,
                  ExecContext &ctx) override;
};

} // namespace nn
} // namespace redeye

#endif // REDEYE_NN_ACTIVATION_HH
