/**
 * @file
 * Local response normalization (across channels), as used by AlexNet
 * and GoogLeNet:
 *
 *   out[c] = in[c] / (k + (alpha/n) * sum_{c' in window} in[c']^2)^beta
 *
 * On RedEye, normalization is realized by letting the convolutional
 * module rescale weights using the pooled local response (Section
 * III-B); functionally it is this layer.
 */

#ifndef REDEYE_NN_LRN_HH
#define REDEYE_NN_LRN_HH

#include "nn/layer.hh"

namespace redeye {
namespace nn {

/** LRN hyperparameters (Caffe defaults). */
struct LrnParams {
    std::size_t localSize = 5; ///< channel window (odd)
    float alpha = 1e-4f;
    float beta = 0.75f;
    float k = 1.0f;
};

/** Across-channel local response normalization. */
class LrnLayer : public Layer
{
  public:
    LrnLayer(std::string name, LrnParams params);

    LayerKind kind() const override { return LayerKind::LRN; }

    Shape outputShape(const std::vector<Shape> &in) const override;

    using Layer::forward;
    using Layer::backward;

    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 ExecContext &ctx) override;

    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &out_grad,
                  std::vector<Tensor> &in_grads,
                  ExecContext &ctx) override;

    void mixStructure(StructuralHasher &h) const override;

    const LrnParams &lrnParams() const { return params_; }

  private:
    LrnParams params_;
    Tensor scale_; ///< forward cache: (k + alpha/n * sum sq)
};

} // namespace nn
} // namespace redeye

#endif // REDEYE_NN_LRN_HH
