/**
 * @file
 * Channel-axis concatenation, used by GoogLeNet inception modules to
 * merge parallel branches.
 */

#ifndef REDEYE_NN_CONCAT_HH
#define REDEYE_NN_CONCAT_HH

#include "nn/layer.hh"

namespace redeye {
namespace nn {

/** Concatenate inputs along the channel axis. */
class ConcatLayer : public Layer
{
  public:
    explicit ConcatLayer(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::Concat; }

    Shape outputShape(const std::vector<Shape> &in) const override;

    using Layer::forward;
    using Layer::backward;

    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 ExecContext &ctx) override;

    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &out_grad,
                  std::vector<Tensor> &in_grads,
                  ExecContext &ctx) override;
};

} // namespace nn
} // namespace redeye

#endif // REDEYE_NN_CONCAT_HH
