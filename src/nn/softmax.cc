#include "nn/softmax.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace redeye {
namespace nn {

Shape
SoftmaxLayer::outputShape(const std::vector<Shape> &in) const
{
    fatal_if(in.size() != 1, "softmax '", name(), "' takes one input");
    fatal_if(in[0].h != 1 || in[0].w != 1, "softmax '", name(),
             "' expects flattened (n, c, 1, 1) input, got ",
             in[0].str());
    return in[0];
}

void
SoftmaxLayer::forward(const std::vector<const Tensor *> &in, Tensor &out,
                      ExecContext &ctx)
{
    const Tensor &x = *in[0];
    const Shape &s = x.shape();
    if (out.shape() != s)
        out = Tensor(s);

    parallelFor(ctx, s.n, [&](std::size_t n) {
        const float *xi = x.data() + n * s.c;
        float *oi = out.data() + n * s.c;
        const float m = *std::max_element(xi, xi + s.c);
        double sum = 0.0;
        for (std::size_t c = 0; c < s.c; ++c) {
            oi[c] = std::exp(xi[c] - m);
            sum += oi[c];
        }
        const auto inv = static_cast<float>(1.0 / sum);
        for (std::size_t c = 0; c < s.c; ++c)
            oi[c] *= inv;
    });
}

void
SoftmaxLayer::backward(const std::vector<const Tensor *> &in,
                       const Tensor &out, const Tensor &out_grad,
                       std::vector<Tensor> &in_grads, ExecContext &ctx)
{
    (void)in;
    const Shape &s = out.shape();
    Tensor &dx = in_grads[0];
    parallelFor(ctx, s.n, [&](std::size_t n) {
        const float *y = out.data() + n * s.c;
        const float *g = out_grad.data() + n * s.c;
        float *d = dx.data() + n * s.c;
        double dot = 0.0;
        for (std::size_t c = 0; c < s.c; ++c)
            dot += static_cast<double>(y[c]) * g[c];
        for (std::size_t c = 0; c < s.c; ++c)
            d[c] += y[c] * (g[c] - static_cast<float>(dot));
    });
}

double
softmaxCrossEntropy(const Tensor &logits,
                    const std::vector<std::int32_t> &labels, Tensor &grad)
{
    const Shape &s = logits.shape();
    panic_if(s.h != 1 || s.w != 1, "loss expects (n, c, 1, 1) logits");
    panic_if(labels.size() != s.n, "label count ", labels.size(),
             " != batch ", s.n);
    if (grad.shape() != s)
        grad = Tensor(s);

    double loss = 0.0;
    const auto inv_batch = 1.0 / static_cast<double>(s.n);
    for (std::size_t n = 0; n < s.n; ++n) {
        const float *xi = logits.data() + n * s.c;
        float *gi = grad.data() + n * s.c;
        const std::int32_t label = labels[n];
        panic_if(label < 0 || static_cast<std::size_t>(label) >= s.c,
                 "label ", label, " out of range for ", s.c,
                 " classes");

        const float m = *std::max_element(xi, xi + s.c);
        double sum = 0.0;
        for (std::size_t c = 0; c < s.c; ++c)
            sum += std::exp(static_cast<double>(xi[c]) - m);
        const double log_sum = std::log(sum) + m;
        loss += (log_sum - xi[static_cast<std::size_t>(label)]) *
                inv_batch;

        for (std::size_t c = 0; c < s.c; ++c) {
            const double p = std::exp(static_cast<double>(xi[c]) -
                                      log_sum);
            const double target =
                c == static_cast<std::size_t>(label) ? 1.0 : 0.0;
            gi[c] = static_cast<float>((p - target) * inv_batch);
        }
    }
    return loss;
}

bool
topNContains(const float *scores, std::size_t classes,
             std::int32_t label, std::size_t n)
{
    panic_if(label < 0 || static_cast<std::size_t>(label) >= classes,
             "label out of range");
    const float target = scores[static_cast<std::size_t>(label)];
    std::size_t strictly_better = 0;
    std::size_t ties_before = 0;
    for (std::size_t c = 0; c < classes; ++c) {
        if (scores[c] > target) {
            ++strictly_better;
        } else if (scores[c] == target &&
                   c < static_cast<std::size_t>(label)) {
            ++ties_before;
        }
    }
    return strictly_better + ties_before < n;
}

} // namespace nn
} // namespace redeye
