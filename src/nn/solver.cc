#include "nn/solver.hh"

#include <cmath>

#include "core/logging.hh"

namespace redeye {
namespace nn {

SgdSolver::SgdSolver(Network &net, SolverParams params)
    : net_(net), params_(params)
{
    fatal_if(params_.learningRate <= 0.0, "learning rate must be > 0");
    fatal_if(params_.momentum < 0.0 || params_.momentum >= 1.0,
             "momentum must be in [0, 1)");
    for (Tensor *p : net_.params())
        velocity_.emplace_back(p->shape());
}

double
SgdSolver::currentLearningRate() const
{
    double lr = params_.learningRate;
    if (params_.lrStep > 0) {
        const auto decays = iteration_ / params_.lrStep;
        lr *= std::pow(params_.lrDecay, static_cast<double>(decays));
    }
    return lr;
}

void
SgdSolver::step()
{
    auto params = net_.params();
    auto grads = net_.paramGrads();
    panic_if(params.size() != grads.size() ||
                 params.size() != velocity_.size(),
             "parameter/gradient bookkeeping out of sync");

    double scale = 1.0;
    if (params_.gradClip > 0.0) {
        double norm_sq = 0.0;
        for (Tensor *g : grads) {
            for (std::size_t i = 0; i < g->size(); ++i)
                norm_sq += static_cast<double>((*g)[i]) * (*g)[i];
        }
        const double norm = std::sqrt(norm_sq);
        if (norm > params_.gradClip)
            scale = params_.gradClip / norm;
    }

    const double lr = currentLearningRate();
    for (std::size_t k = 0; k < params.size(); ++k) {
        Tensor &p = *params[k];
        Tensor &g = *grads[k];
        Tensor &v = velocity_[k];
        for (std::size_t i = 0; i < p.size(); ++i) {
            const double grad = scale * g[i] +
                                params_.weightDecay * p[i];
            v[i] = static_cast<float>(params_.momentum * v[i] -
                                      lr * grad);
            p[i] += v[i];
        }
    }
    ++iteration_;
}

} // namespace nn
} // namespace redeye
