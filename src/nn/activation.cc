#include "nn/activation.hh"

#include "core/logging.hh"

namespace redeye {
namespace nn {

Shape
ReluLayer::outputShape(const std::vector<Shape> &in) const
{
    fatal_if(in.size() != 1, "relu '", name(), "' takes one input");
    return in[0];
}

void
ReluLayer::forward(const std::vector<const Tensor *> &in, Tensor &out,
                   ExecContext &ctx)
{
    const Tensor &x = *in[0];
    if (out.shape() != x.shape())
        out = Tensor(x.shape());
    parallelForChunks(ctx, x.size(),
                      [&](std::size_t begin, std::size_t end,
                          std::size_t) {
                          for (std::size_t i = begin; i < end; ++i)
                              out[i] = x[i] > 0.0f ? x[i] : 0.0f;
                      });
}

void
ReluLayer::backward(const std::vector<const Tensor *> &in,
                    const Tensor &out, const Tensor &out_grad,
                    std::vector<Tensor> &in_grads, ExecContext &ctx)
{
    (void)out;
    const Tensor &x = *in[0];
    Tensor &dx = in_grads[0];
    parallelForChunks(ctx, x.size(),
                      [&](std::size_t begin, std::size_t end,
                          std::size_t) {
                          for (std::size_t i = begin; i < end; ++i) {
                              if (x[i] > 0.0f)
                                  dx[i] += out_grad[i];
                          }
                      });
}

} // namespace nn
} // namespace redeye
