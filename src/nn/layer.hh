/**
 * @file
 * Layer abstraction for the ConvNet framework.
 *
 * A Layer consumes one or more input tensors and produces exactly one
 * output tensor. Layers may hold parameters (weights/biases) and cache
 * forward-pass state needed by backward(). The RedEye compiler pattern
 * matches on LayerKind to map network prefixes onto analog modules,
 * and the energy model queries macCount()/outputShape() for workload
 * accounting.
 *
 * Execution model: the virtual forward()/backward() hooks take an
 * ExecContext carrying the thread pool; implementations parallelize
 * their batch/item loops through parallelFor(). Non-virtual
 * convenience overloads without the context run on the process-wide
 * serial context, so pre-ExecContext call sites keep compiling
 * unchanged.
 */

#ifndef REDEYE_NN_LAYER_HH
#define REDEYE_NN_LAYER_HH

#include <memory>
#include <string>
#include <vector>

#include "core/exec.hh"
#include "tensor/tensor.hh"

namespace redeye {

class StructuralHasher;

namespace nn {

/** Discriminator used by the RedEye compiler and the noise injector. */
enum class LayerKind {
    Input,
    Convolution,
    ReLU,
    MaxPool,
    AvgPool,
    LRN,
    Concat,
    InnerProduct,
    Dropout,
    Softmax,
    GaussianNoise,
    QuantizationNoise,
    Custom,
};

/** Human-readable name of a LayerKind. */
const char *layerKindName(LayerKind kind);

/** Abstract network layer. */
class Layer
{
  public:
    explicit Layer(std::string name) : name_(std::move(name)) {}

    virtual ~Layer() = default;

    Layer(const Layer &) = delete;
    Layer &operator=(const Layer &) = delete;

    /** Unique (within a Network) layer name. */
    const std::string &name() const { return name_; }

    /** Kind discriminator. */
    virtual LayerKind kind() const = 0;

    /**
     * Infer the output shape from input shapes; called once when the
     * layer is added to a Network. Implementations should fatal() on
     * invalid configurations.
     */
    virtual Shape outputShape(const std::vector<Shape> &in) const = 0;

    /**
     * Compute the output from the inputs, parallelizing independent
     * work across @p ctx. May cache state for backward(). The
     * result must be bit-identical at any thread count.
     */
    virtual void forward(const std::vector<const Tensor *> &in,
                         Tensor &out, ExecContext &ctx) = 0;

    /** Convenience overload: forward on the serial context. */
    void
    forward(const std::vector<const Tensor *> &in, Tensor &out)
    {
        forward(in, out, ExecContext::serial());
    }

    /**
     * Propagate gradients across @p ctx. @p in_grads arrives
     * pre-sized to the input shapes and zero-filled; implementations
     * accumulate into it and into their parameter gradients. Results
     * are deterministic for a fixed thread count (parameter-gradient
     * reduction order follows the chunking).
     *
     * The default implementation panics; inference-only layers may
     * keep it.
     */
    virtual void backward(const std::vector<const Tensor *> &in,
                          const Tensor &out, const Tensor &out_grad,
                          std::vector<Tensor> &in_grads,
                          ExecContext &ctx);

    /** Convenience overload: backward on the serial context. */
    void
    backward(const std::vector<const Tensor *> &in, const Tensor &out,
             const Tensor &out_grad, std::vector<Tensor> &in_grads)
    {
        backward(in, out, out_grad, in_grads, ExecContext::serial());
    }

    /** Learnable parameter tensors (empty when parameterless). */
    virtual std::vector<Tensor *> params() { return {}; }

    /** Read-only view of the parameter tensors. */
    std::vector<const Tensor *>
    params() const
    {
        const auto mut = const_cast<Layer *>(this)->params();
        return {mut.begin(), mut.end()};
    }

    /** Gradient tensors, parallel to params(). */
    virtual std::vector<Tensor *> paramGrads() { return {}; }

    /** True while the network runs in training mode. */
    bool training() const { return training_; }

    /** Toggle training/eval behaviour (dropout, noise layers, ...). */
    virtual void setTraining(bool training) { training_ = training; }

    /**
     * Fold the layer's structural configuration into a cache key
     * (core/structural_hash.hh). Only knobs that change execution
     * semantics but are *not* already determined by the layer kind
     * and the input/output shapes need mixing — kernel geometry,
     * strides, padding, window sizes. Parameter values must never be
     * mixed: caches keyed by the structural hash hold artifacts that
     * are pure functions of topology, not of weights. The default
     * mixes nothing (correct for shape-determined layers such as
     * ReLU, Concat or Softmax).
     */
    virtual void
    mixStructure(StructuralHasher &h) const
    {
        (void)h;
    }

    /**
     * Multiply-accumulate operations performed per forward pass with
     * the given input shapes; used for workload/energy accounting.
     */
    virtual std::size_t
    macCount(const std::vector<Shape> &in) const
    {
        (void)in;
        return 0;
    }

  private:
    std::string name_;
    bool training_ = false;
};

/** Alias used throughout the framework. */
using LayerPtr = std::unique_ptr<Layer>;

} // namespace nn
} // namespace redeye

#endif // REDEYE_NN_LAYER_HH
