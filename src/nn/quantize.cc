#include "nn/quantize.hh"

#include <cmath>

#include "core/logging.hh"
#include "nn/network.hh"

namespace redeye {
namespace nn {

QuantizationReport
quantizeTensor(Tensor &t, unsigned bits)
{
    fatal_if(bits < 2 || bits > 16, "weight bits must be in [2, 16]");
    QuantizationReport report;
    const float amax = t.absMax();
    if (amax == 0.0f || t.empty())
        return report;

    const double levels = static_cast<double>((1u << (bits - 1)) - 1);
    const double scale = amax / levels;
    report.scale = scale;

    double sum_sq = 0.0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const double q = std::round(t[i] / scale) * scale;
        const double err = std::fabs(q - t[i]);
        report.maxError = std::max(report.maxError, err);
        sum_sq += err * err;
        t[i] = static_cast<float>(q);
    }
    report.rmsError = std::sqrt(sum_sq /
                                static_cast<double>(t.size()));
    return report;
}

double
quantizeNetworkWeights(Network &net, unsigned bits)
{
    double worst_rms = 0.0;
    for (Tensor *p : net.params()) {
        const auto report = quantizeTensor(*p, bits);
        worst_rms = std::max(worst_rms, report.rmsError);
    }
    return worst_rms;
}

} // namespace nn
} // namespace redeye
