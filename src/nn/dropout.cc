#include "nn/dropout.hh"

#include "core/logging.hh"
#include "core/structural_hash.hh"

namespace redeye {
namespace nn {

DropoutLayer::DropoutLayer(std::string name, float ratio, Rng rng)
    : Layer(std::move(name)), ratio_(ratio), seed_(rng.raw())
{
    fatal_if(ratio_ < 0.0f || ratio_ >= 1.0f, "dropout '", this->name(),
             "': ratio must be in [0, 1), got ", ratio_);
}

Shape
DropoutLayer::outputShape(const std::vector<Shape> &in) const
{
    fatal_if(in.size() != 1, "dropout '", name(), "' takes one input");
    return in[0];
}

void
DropoutLayer::forward(const std::vector<const Tensor *> &in, Tensor &out,
                      ExecContext &ctx)
{
    const Tensor &x = *in[0];
    if (out.shape() != x.shape())
        out = Tensor(x.shape());

    if (!training() || ratio_ == 0.0f) {
        out.vec() = x.vec();
        // Flag, don't clear(): the buffer keeps its storage so a
        // later training pass (or an alternating train/eval loop)
        // never reallocates the mask.
        maskActive_ = false;
        return;
    }

    const float keep = 1.0f - ratio_;
    mask_.resize(x.size());
    maskActive_ = true;
    const std::size_t slice = x.shape().sliceSize();
    const std::uint64_t pass = pass_++;
    // One counter-based stream per batch item (core/rng.hh): the
    // mask is bit-identical at any thread count.
    parallelFor(ctx, x.shape().n, [&](std::size_t n) {
        Rng stream = streamRng(seed_, pass, n);
        const std::size_t begin = n * slice;
        for (std::size_t i = begin; i < begin + slice; ++i) {
            mask_[i] = stream.bernoulli(keep) ? 1.0f / keep : 0.0f;
            out[i] = x[i] * mask_[i];
        }
    });
}

void
DropoutLayer::backward(const std::vector<const Tensor *> &in,
                       const Tensor &out, const Tensor &out_grad,
                       std::vector<Tensor> &in_grads, ExecContext &ctx)
{
    (void)in;
    (void)out;
    Tensor &dx = in_grads[0];
    if (!maskActive_) {
        dx.add(out_grad);
        return;
    }
    parallelForChunks(ctx, dx.size(),
                      [&](std::size_t begin, std::size_t end,
                          std::size_t) {
                          for (std::size_t i = begin; i < end; ++i)
                              dx[i] += out_grad[i] * mask_[i];
                      });
}

void
DropoutLayer::mixStructure(StructuralHasher &h) const
{
    h.mixDouble(ratio_);
}

} // namespace nn
} // namespace redeye
