#include "nn/network.hh"

#include <chrono>
#include <sstream>

#include "core/logging.hh"

namespace redeye {
namespace nn {

Network::Network(std::string name) : name_(std::move(name))
{
}

void
Network::setInputShape(const Shape &shape)
{
    fatal_if(!nodes_.empty(),
             "setInputShape() must precede the first add()");
    fatal_if(shape.c == 0 || shape.h == 0 || shape.w == 0,
             "invalid input shape ", shape.str());
    inputShape_ = Shape(1, shape.c, shape.h, shape.w);
}

int
Network::indexOf(const std::string &name) const
{
    if (name == kInputName)
        return -1;
    auto it = byName_.find(name);
    fatal_if(it == byName_.end(), "network '", name_,
             "' has no layer named '", name, "'");
    return it->second;
}

std::vector<Shape>
Network::inputShapes(const Node &node) const
{
    std::vector<Shape> shapes;
    shapes.reserve(node.inputs.size());
    for (int idx : node.inputs) {
        shapes.push_back(idx < 0 ? inputShape_ : nodes_[idx].shape);
    }
    return shapes;
}

Layer &
Network::add(LayerPtr layer, std::vector<std::string> inputs)
{
    fatal_if(!inputShape_.valid(),
             "call setInputShape() before adding layers");
    fatal_if(!layer, "null layer");
    fatal_if(byName_.count(layer->name()), "duplicate layer name '",
             layer->name(), "'");

    Node node;
    if (inputs.empty()) {
        node.inputs.push_back(static_cast<int>(nodes_.size()) - 1);
    } else {
        for (const auto &in : inputs)
            node.inputs.push_back(indexOf(in));
    }
    node.layer = std::move(layer);
    node.shape = node.layer->outputShape(inputShapes(node));

    byName_[node.layer->name()] = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(node));
    return *nodes_.back().layer;
}

Layer &
Network::insertAfter(const std::string &after, LayerPtr layer)
{
    fatal_if(!layer, "null layer");
    fatal_if(byName_.count(layer->name()), "duplicate layer name '",
             layer->name(), "'");
    const int pos = indexOf(after);
    fatal_if(pos < 0, "cannot insert after the external input; "
                      "insert after the first layer instead");

    Node node;
    node.inputs.push_back(pos);
    node.layer = std::move(layer);
    node.shape = node.layer->outputShape({nodes_[pos].shape});

    // Insert directly after the producer and shift indices.
    const int at = pos + 1;
    nodes_.insert(nodes_.begin() + at, std::move(node));
    for (auto &[nm, idx] : byName_) {
        (void)nm;
        if (idx >= at)
            ++idx;
    }
    byName_[nodes_[at].layer->name()] = at;
    for (std::size_t i = at + 1; i < nodes_.size(); ++i) {
        for (int &in : nodes_[i].inputs) {
            if (in == pos)
                in = at; // rewire consumers of 'after'
            else if (in >= at)
                ++in;
        }
    }
    return *nodes_[at].layer;
}

std::vector<std::string>
Network::inputsOf(std::size_t i) const
{
    panic_if(i >= nodes_.size(), "node index out of range");
    std::vector<std::string> out;
    for (int idx : nodes_[i].inputs) {
        out.push_back(idx < 0 ? std::string(kInputName)
                              : nodes_[idx].layer->name());
    }
    return out;
}

Layer &
Network::layer(const std::string &name)
{
    const int idx = indexOf(name);
    fatal_if(idx < 0, "'@input' is not a layer");
    return *nodes_[idx].layer;
}

bool
Network::hasLayer(const std::string &name) const
{
    return byName_.count(name) > 0;
}

Shape
Network::nodeShape(const std::string &name) const
{
    const int idx = indexOf(name);
    return idx < 0 ? inputShape_ : nodes_[idx].shape;
}

Shape
Network::outputShape() const
{
    fatal_if(nodes_.empty(), "empty network");
    return nodes_.back().shape;
}

const Tensor &
Network::forward(const Tensor &input, ExecContext &ctx)
{
    fatal_if(nodes_.empty(), "empty network");
    const Shape &is = input.shape();
    fatal_if(is.c != inputShape_.c || is.h != inputShape_.h ||
                 is.w != inputShape_.w,
             "input shape ", is.str(), " does not match declared ",
             inputShape_.str());

    using Clock = std::chrono::steady_clock;
    const ExecContext::LayerTimer &timer = ctx.layerTimer();

    input_ = input;
    acts_.resize(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        std::vector<const Tensor *> ins;
        ins.reserve(nodes_[i].inputs.size());
        for (int idx : nodes_[i].inputs)
            ins.push_back(idx < 0 ? &input_ : &acts_[idx]);
        const auto start = timer ? Clock::now() : Clock::time_point();
        nodes_[i].layer->forward(ins, acts_[i], ctx);
        if (timer) {
            const std::chrono::duration<double> dt = Clock::now() -
                                                     start;
            timer(nodes_[i].layer->name(), dt.count());
        }
    }
    return acts_.back();
}

const Tensor &
Network::activation(const std::string &name) const
{
    const int idx = indexOf(name);
    fatal_if(idx < 0, "'@input' activation is the input itself");
    panic_if(acts_.size() != nodes_.size(),
             "activation() before forward()");
    return acts_[idx];
}

const Tensor &
Network::backward(const Tensor &out_grad, ExecContext &ctx)
{
    panic_if(acts_.size() != nodes_.size(), "backward() before forward()");
    panic_if(out_grad.shape() != acts_.back().shape(),
             "out_grad shape ", out_grad.shape().str(),
             " != output shape ", acts_.back().shape().str());

    grads_.assign(nodes_.size(), Tensor());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        grads_[i] = Tensor(acts_[i].shape());
    }
    inputGrad_ = Tensor(input_.shape());
    grads_.back() = out_grad;

    for (std::size_t ri = nodes_.size(); ri-- > 0;) {
        Node &node = nodes_[ri];
        std::vector<const Tensor *> ins;
        std::vector<Tensor *> grad_targets;
        ins.reserve(node.inputs.size());
        for (int idx : node.inputs) {
            ins.push_back(idx < 0 ? &input_ : &acts_[idx]);
            grad_targets.push_back(idx < 0 ? &inputGrad_
                                           : &grads_[idx]);
        }
        // Layers accumulate into their producers' gradient buffers;
        // wrap the targets in a temporary vector of references.
        std::vector<Tensor> scratch;
        scratch.reserve(ins.size());
        for (std::size_t k = 0; k < ins.size(); ++k)
            scratch.push_back(Tensor(ins[k]->shape()));
        node.layer->backward(ins, acts_[ri], grads_[ri], scratch, ctx);
        for (std::size_t k = 0; k < ins.size(); ++k)
            grad_targets[k]->add(scratch[k]);
    }
    return inputGrad_;
}

std::vector<Tensor *>
Network::params()
{
    std::vector<Tensor *> out;
    for (auto &node : nodes_) {
        for (Tensor *p : node.layer->params())
            out.push_back(p);
    }
    return out;
}

std::vector<const Tensor *>
Network::params() const
{
    std::vector<const Tensor *> out;
    for (const auto &node : nodes_) {
        for (const Tensor *p : node.layer->params())
            out.push_back(p);
    }
    return out;
}

std::vector<Tensor *>
Network::paramGrads()
{
    std::vector<Tensor *> out;
    for (auto &node : nodes_) {
        for (Tensor *g : node.layer->paramGrads())
            out.push_back(g);
    }
    return out;
}

std::vector<const Tensor *>
Network::paramGrads() const
{
    std::vector<const Tensor *> out;
    for (const auto &node : nodes_) {
        for (const Tensor *g : node.layer->paramGrads())
            out.push_back(g);
    }
    return out;
}

void
Network::zeroGrads()
{
    for (Tensor *g : paramGrads())
        g->zero();
}

void
Network::setTraining(bool training)
{
    for (auto &node : nodes_)
        node.layer->setTraining(training);
}

std::size_t
Network::totalMacs() const
{
    std::size_t total = 0;
    for (const auto &node : nodes_)
        total += node.layer->macCount(inputShapes(node));
    return total;
}

std::size_t
Network::parameterCount() const
{
    std::size_t total = 0;
    for (const Tensor *p : params())
        total += p->size();
    return total;
}

std::string
Network::summary() const
{
    std::ostringstream oss;
    oss << "network '" << name_ << "' input " << inputShape_.str()
        << "\n";
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node &node = nodes_[i];
        oss << "  [" << i << "] " << node.layer->name() << " ("
            << layerKindName(node.layer->kind()) << ") <- ";
        for (std::size_t k = 0; k < node.inputs.size(); ++k) {
            if (k)
                oss << ", ";
            oss << (node.inputs[k] < 0
                        ? kInputName
                        : nodes_[node.inputs[k]].layer->name());
        }
        oss << " -> " << node.shape.str() << "\n";
    }
    return oss.str();
}

} // namespace nn
} // namespace redeye
