#include "nn/network.hh"

#include <chrono>
#include <sstream>

#include "core/logging.hh"
#include "core/structural_hash.hh"

namespace redeye {
namespace nn {

Network::Network(std::string name) : name_(std::move(name))
{
}

void
Network::setInputShape(const Shape &shape)
{
    fatal_if(!nodes_.empty(),
             "setInputShape() must precede the first add()");
    fatal_if(shape.c == 0 || shape.h == 0 || shape.w == 0,
             "invalid input shape ", shape.str());
    inputShape_ = Shape(1, shape.c, shape.h, shape.w);
}

int
Network::indexOf(const std::string &name) const
{
    if (name == kInputName)
        return -1;
    auto it = byName_.find(name);
    fatal_if(it == byName_.end(), "network '", name_,
             "' has no layer named '", name, "'");
    return it->second;
}

std::vector<Shape>
Network::inputShapes(const Node &node) const
{
    std::vector<Shape> shapes;
    shapes.reserve(node.inputs.size());
    for (int idx : node.inputs) {
        shapes.push_back(idx < 0 ? inputShape_ : nodes_[idx].shape);
    }
    return shapes;
}

Layer &
Network::add(LayerPtr layer, std::vector<std::string> inputs)
{
    fatal_if(!inputShape_.valid(),
             "call setInputShape() before adding layers");
    fatal_if(!layer, "null layer");
    fatal_if(byName_.count(layer->name()), "duplicate layer name '",
             layer->name(), "'");

    Node node;
    if (inputs.empty()) {
        node.inputs.push_back(static_cast<int>(nodes_.size()) - 1);
    } else {
        for (const auto &in : inputs)
            node.inputs.push_back(indexOf(in));
    }
    node.layer = std::move(layer);
    node.shape = node.layer->outputShape(inputShapes(node));

    byName_[node.layer->name()] = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(node));
    return *nodes_.back().layer;
}

Layer &
Network::insertAfter(const std::string &after, LayerPtr layer)
{
    fatal_if(!layer, "null layer");
    fatal_if(byName_.count(layer->name()), "duplicate layer name '",
             layer->name(), "'");
    const int pos = indexOf(after);
    fatal_if(pos < 0, "cannot insert after the external input; "
                      "insert after the first layer instead");

    Node node;
    node.inputs.push_back(pos);
    node.layer = std::move(layer);
    node.shape = node.layer->outputShape({nodes_[pos].shape});

    // Insert directly after the producer and shift indices.
    const int at = pos + 1;
    nodes_.insert(nodes_.begin() + at, std::move(node));
    for (auto &[nm, idx] : byName_) {
        (void)nm;
        if (idx >= at)
            ++idx;
    }
    byName_[nodes_[at].layer->name()] = at;
    for (std::size_t i = at + 1; i < nodes_.size(); ++i) {
        for (int &in : nodes_[i].inputs) {
            if (in == pos)
                in = at; // rewire consumers of 'after'
            else if (in >= at)
                ++in;
        }
    }
    return *nodes_[at].layer;
}

std::vector<std::string>
Network::inputsOf(std::size_t i) const
{
    panic_if(i >= nodes_.size(), "node index out of range");
    std::vector<std::string> out;
    for (int idx : nodes_[i].inputs) {
        out.push_back(idx < 0 ? std::string(kInputName)
                              : nodes_[idx].layer->name());
    }
    return out;
}

Layer &
Network::layer(const std::string &name)
{
    const int idx = indexOf(name);
    fatal_if(idx < 0, "'@input' is not a layer");
    return *nodes_[idx].layer;
}

bool
Network::hasLayer(const std::string &name) const
{
    return byName_.count(name) > 0;
}

Shape
Network::nodeShape(const std::string &name) const
{
    const int idx = indexOf(name);
    return idx < 0 ? inputShape_ : nodes_[idx].shape;
}

Shape
Network::outputShape() const
{
    fatal_if(nodes_.empty(), "empty network");
    return nodes_.back().shape;
}

const Tensor &
Network::forward(const Tensor &input, ExecContext &ctx)
{
    fatal_if(nodes_.empty(), "empty network");
    const Shape &is = input.shape();
    fatal_if(is.c != inputShape_.c || is.h != inputShape_.h ||
                 is.w != inputShape_.w,
             "input shape ", is.str(), " does not match declared ",
             inputShape_.str());

    using Clock = std::chrono::steady_clock;
    const ExecContext::LayerTimer &timer = ctx.layerTimer();

    input_ = input;
    // (Re)build the per-node input-pointer plan when the topology
    // changed. acts_ elements move only on this resize, so the cached
    // pointers stay valid between rebuilds.
    if (fwdIns_.size() != nodes_.size()) {
        acts_.resize(nodes_.size());
        fwdIns_.assign(nodes_.size(), {});
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            fwdIns_[i].reserve(nodes_[i].inputs.size());
            for (int idx : nodes_[i].inputs)
                fwdIns_[i].push_back(idx < 0 ? &input_ : &acts_[idx]);
        }
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const auto start = timer ? Clock::now() : Clock::time_point();
        nodes_[i].layer->forward(fwdIns_[i], acts_[i], ctx);
        if (timer) {
            const std::chrono::duration<double> dt = Clock::now() -
                                                     start;
            timer(nodes_[i].layer->name(), dt.count());
        }
    }
    return acts_.back();
}

const Tensor &
Network::activation(const std::string &name) const
{
    const int idx = indexOf(name);
    fatal_if(idx < 0, "'@input' activation is the input itself");
    panic_if(acts_.size() != nodes_.size(),
             "activation() before forward()");
    return acts_[idx];
}

const Tensor &
Network::backward(const Tensor &out_grad, ExecContext &ctx)
{
    panic_if(acts_.size() != nodes_.size(), "backward() before forward()");
    panic_if(out_grad.shape() != acts_.back().shape(),
             "out_grad shape ", out_grad.shape().str(),
             " != output shape ", acts_.back().shape().str());

    // Recycle the gradient buffers: reallocate only on shape change,
    // zero otherwise. The target-pointer plan is rebuilt with them
    // when the topology changed (grads_ elements move only then).
    const bool rebuild = grads_.size() != nodes_.size() ||
                         gradTargets_.size() != nodes_.size();
    if (rebuild)
        grads_.resize(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (grads_[i].shape() != acts_[i].shape())
            grads_[i] = Tensor(acts_[i].shape());
        else
            grads_[i].zero();
    }
    if (inputGrad_.shape() != input_.shape())
        inputGrad_ = Tensor(input_.shape());
    else
        inputGrad_.zero();
    grads_.back() = out_grad;

    if (rebuild) {
        gradTargets_.assign(nodes_.size(), {});
        gradScratch_.assign(nodes_.size(), {});
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
            const Node &node = nodes_[i];
            gradTargets_[i].reserve(node.inputs.size());
            for (int idx : node.inputs)
                gradTargets_[i].push_back(idx < 0 ? &inputGrad_
                                                  : &grads_[idx]);
            gradScratch_[i].resize(node.inputs.size());
        }
    }

    for (std::size_t ri = nodes_.size(); ri-- > 0;) {
        Node &node = nodes_[ri];
        const std::vector<const Tensor *> &ins = fwdIns_[ri];
        // Layers accumulate into their producers' gradient buffers
        // through per-input scratch tensors, recycled like grads_.
        std::vector<Tensor> &scratch = gradScratch_[ri];
        for (std::size_t k = 0; k < ins.size(); ++k) {
            if (scratch[k].shape() != ins[k]->shape())
                scratch[k] = Tensor(ins[k]->shape());
            else
                scratch[k].zero();
        }
        node.layer->backward(ins, acts_[ri], grads_[ri], scratch, ctx);
        for (std::size_t k = 0; k < ins.size(); ++k)
            gradTargets_[ri][k]->add(scratch[k]);
    }
    return inputGrad_;
}

std::vector<Tensor *>
Network::params()
{
    std::vector<Tensor *> out;
    for (auto &node : nodes_) {
        for (Tensor *p : node.layer->params())
            out.push_back(p);
    }
    return out;
}

std::vector<const Tensor *>
Network::params() const
{
    std::vector<const Tensor *> out;
    for (const auto &node : nodes_) {
        for (const Tensor *p : node.layer->params())
            out.push_back(p);
    }
    return out;
}

std::vector<Tensor *>
Network::paramGrads()
{
    std::vector<Tensor *> out;
    for (auto &node : nodes_) {
        for (Tensor *g : node.layer->paramGrads())
            out.push_back(g);
    }
    return out;
}

std::vector<const Tensor *>
Network::paramGrads() const
{
    std::vector<const Tensor *> out;
    for (const auto &node : nodes_) {
        for (const Tensor *g : node.layer->paramGrads())
            out.push_back(g);
    }
    return out;
}

void
Network::zeroGrads()
{
    for (Tensor *g : paramGrads())
        g->zero();
}

void
Network::setTraining(bool training)
{
    for (auto &node : nodes_)
        node.layer->setTraining(training);
}

std::size_t
Network::totalMacs() const
{
    std::size_t total = 0;
    for (const auto &node : nodes_)
        total += node.layer->macCount(inputShapes(node));
    return total;
}

std::size_t
Network::parameterCount() const
{
    std::size_t total = 0;
    for (const Tensor *p : params())
        total += p->size();
    return total;
}

std::uint64_t
Network::structuralHash() const
{
    StructuralHasher h(/*salt=*/0x4e657477u); // 'Netw'
    h.mix(inputShape_.c).mix(inputShape_.h).mix(inputShape_.w);
    h.mix(nodes_.size());
    for (const Node &node : nodes_) {
        h.mix(static_cast<std::uint64_t>(node.layer->kind()));
        h.mixString(node.layer->name());
        h.mix(node.inputs.size());
        for (int idx : node.inputs)
            h.mixSigned(idx);
        h.mix(node.shape.n)
            .mix(node.shape.c)
            .mix(node.shape.h)
            .mix(node.shape.w);
        // Layer-specific knobs the shapes underdetermine: kernel
        // geometry, strides, padding, windows (see Layer::
        // mixStructure). Without these, a 3x3/pad-1 and a 5x5/pad-2
        // convolution would collide — same shapes, different
        // compiled programs.
        node.layer->mixStructure(h);
    }
    return h.digest();
}

std::string
Network::summary() const
{
    std::ostringstream oss;
    oss << "network '" << name_ << "' input " << inputShape_.str()
        << "\n";
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node &node = nodes_[i];
        oss << "  [" << i << "] " << node.layer->name() << " ("
            << layerKindName(node.layer->kind()) << ") <- ";
        for (std::size_t k = 0; k < node.inputs.size(); ++k) {
            if (k)
                oss << ", ";
            oss << (node.inputs[k] < 0
                        ? kInputName
                        : nodes_[node.inputs[k]].layer->name());
        }
        oss << " -> " << node.shape.str() << "\n";
    }
    return oss.str();
}

} // namespace nn
} // namespace redeye
