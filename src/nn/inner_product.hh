/**
 * @file
 * Fully-connected (inner product) layer. Flattens each batch item and
 * applies out = W x + b, producing a (n, outputs, 1, 1) tensor.
 */

#ifndef REDEYE_NN_INNER_PRODUCT_HH
#define REDEYE_NN_INNER_PRODUCT_HH

#include "nn/layer.hh"

namespace redeye {

class Rng;

namespace nn {

/** Fully-connected layer with trainable weight matrix and bias. */
class InnerProductLayer : public Layer
{
  public:
    InnerProductLayer(std::string name, std::size_t outputs,
                      bool bias = true);

    LayerKind kind() const override { return LayerKind::InnerProduct; }

    Shape outputShape(const std::vector<Shape> &in) const override;

    using Layer::forward;
    using Layer::backward;

    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 ExecContext &ctx) override;

    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &out_grad,
                  std::vector<Tensor> &in_grads,
                  ExecContext &ctx) override;

    std::vector<Tensor *> params() override;
    std::vector<Tensor *> paramGrads() override;

    std::size_t macCount(const std::vector<Shape> &in) const override;

    /** Weights as (outputs, inputs, 1, 1). */
    Tensor &weights() { return weights_; }

    /** Bias as (1, outputs, 1, 1). */
    Tensor &biases() { return biases_; }

    void mixStructure(StructuralHasher &h) const override;

    std::size_t outputs() const { return outputs_; }

    /** He-initialize weights and zero biases. */
    void initHe(Rng &rng);

  private:
    void materialize(std::size_t inputs) const;

    std::size_t outputs_;
    bool bias_;
    mutable Tensor weights_;
    mutable Tensor biases_;
    mutable Tensor weightGrad_;
    mutable Tensor biasGrad_;

    // Per-chunk parameter-gradient scratch, kept across backward()
    // calls so steady-state training iterations reuse capacity.
    std::vector<std::vector<float>> dwSlots_;
    std::vector<std::vector<float>> dbSlots_;
};

} // namespace nn
} // namespace redeye

#endif // REDEYE_NN_INNER_PRODUCT_HH
