/**
 * @file
 * Inverted dropout. Active only in training mode; at inference the
 * layer is the identity (as in the deployed GoogLeNet graph).
 */

#ifndef REDEYE_NN_DROPOUT_HH
#define REDEYE_NN_DROPOUT_HH

#include <vector>

#include "core/rng.hh"
#include "nn/layer.hh"

namespace redeye {
namespace nn {

/** Inverted dropout layer. */
class DropoutLayer : public Layer
{
  public:
    /**
     * @param ratio Probability of dropping a unit, in [0, 1).
     * @param rng Private random stream for mask generation.
     */
    DropoutLayer(std::string name, float ratio, Rng rng);

    LayerKind kind() const override { return LayerKind::Dropout; }

    Shape outputShape(const std::vector<Shape> &in) const override;

    using Layer::forward;
    using Layer::backward;

    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 ExecContext &ctx) override;

    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &out_grad,
                  std::vector<Tensor> &in_grads,
                  ExecContext &ctx) override;

    void mixStructure(StructuralHasher &h) const override;

    float ratio() const { return ratio_; }

  private:
    float ratio_;
    std::uint64_t seed_;   ///< base of the per-item mask streams
    std::uint64_t pass_ = 0; ///< counts masked forward passes
    std::vector<float> mask_; ///< buffer persists across mode switches
    bool maskActive_ = false; ///< mask_ holds the last forward's mask
};

} // namespace nn
} // namespace redeye

#endif // REDEYE_NN_DROPOUT_HH
