/**
 * @file
 * Network: a DAG of layers with a single external input and a
 * designated output node.
 *
 * Layers are added in topological order; each references its inputs by
 * layer name ("@input" denotes the external input; an empty input list
 * defaults to the previously added layer). The network validates
 * shapes at add() time using per-item (n == 1) shapes, and executes
 * with any batch size at forward() time.
 */

#ifndef REDEYE_NN_NETWORK_HH
#define REDEYE_NN_NETWORK_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hh"

namespace redeye {
namespace nn {

/** Name that denotes the network's external input tensor. */
inline const char *const kInputName = "@input";

/** A DAG of layers. */
class Network
{
  public:
    explicit Network(std::string name = "net");

    const std::string &name() const { return name_; }

    /**
     * Declare the per-item input shape (n is ignored; pass 1).
     * Must be called before the first add().
     */
    void setInputShape(const Shape &shape);

    const Shape &inputShape() const { return inputShape_; }

    /**
     * Append a layer. @p inputs lists producer layer names (or
     * kInputName); when empty, the previously added layer (or the
     * network input for the first layer) is used.
     *
     * @return Reference to the added layer.
     */
    Layer &add(LayerPtr layer, std::vector<std::string> inputs = {});

    /**
     * Insert a layer immediately after an existing node: the new
     * layer consumes @p after's output, and every consumer of
     * @p after is rewired to consume the new layer. Used by the noise
     * injector.
     */
    Layer &insertAfter(const std::string &after, LayerPtr layer);

    /** Number of layers. */
    std::size_t size() const { return nodes_.size(); }

    /** Layer by position (topological order). */
    Layer &layerAt(std::size_t i) { return *nodes_[i].layer; }
    const Layer &layerAt(std::size_t i) const { return *nodes_[i].layer; }

    /** Input layer names of the node at position i. */
    std::vector<std::string> inputsOf(std::size_t i) const;

    /** Layer by name (panics if absent). */
    Layer &layer(const std::string &name);

    /** True if a layer with this name exists. */
    bool hasLayer(const std::string &name) const;

    /** Per-item output shape of a node (n == 1). */
    Shape nodeShape(const std::string &name) const;

    /** Per-item output shape of the final node. */
    Shape outputShape() const;

    /**
     * Run the DAG under an execution context; returns the final
     * node's activation. If @p ctx has a layer timer installed, it is
     * invoked with each layer's name and wall-clock seconds.
     */
    const Tensor &forward(const Tensor &input, ExecContext &ctx);

    /** Serial-context convenience overload. */
    const Tensor &
    forward(const Tensor &input)
    {
        return forward(input, ExecContext::serial());
    }

    /** Activation of a named node from the last forward() call. */
    const Tensor &activation(const std::string &name) const;

    /**
     * Backpropagate from the final node. @p out_grad must match the
     * final activation's shape. Parameter gradients accumulate into
     * paramGrads(); call zeroGrads() between steps.
     *
     * @return Gradient with respect to the network input.
     */
    const Tensor &backward(const Tensor &out_grad, ExecContext &ctx);

    /** Serial-context convenience overload. */
    const Tensor &
    backward(const Tensor &out_grad)
    {
        return backward(out_grad, ExecContext::serial());
    }

    /** All parameter tensors across layers. */
    std::vector<Tensor *> params();

    /** Read-only view of all parameter tensors across layers. */
    std::vector<const Tensor *> params() const;

    /** All parameter gradient tensors across layers. */
    std::vector<Tensor *> paramGrads();

    /** Read-only view of all parameter gradient tensors. */
    std::vector<const Tensor *> paramGrads() const;

    /** Zero every parameter gradient. */
    void zeroGrads();

    /** Toggle training mode on every layer. */
    void setTraining(bool training);

    /** Total forward MACs for a batch of 1. */
    std::size_t totalMacs() const;

    /** Sum of parameter element counts. */
    std::size_t parameterCount() const;

    /** Human-readable topology summary. */
    std::string summary() const;

    /**
     * Stable 64-bit key over the network's structure: input shape
     * and, per node, layer kind, name, input wiring and output shape.
     * Parameter *values* (weights) are not part of the key — caches
     * keyed by it hold artifacts that are pure functions of topology
     * (compiled RedEye programs, degradation plans), not of weights.
     * Identical across processes (core/structural_hash.hh).
     */
    std::uint64_t structuralHash() const;

  private:
    struct Node {
        LayerPtr layer;
        std::vector<int> inputs; ///< node indices; -1 = external input
        Shape shape;             ///< per-item output shape (n == 1)
    };

    /** Per-item shapes of a node's inputs. */
    std::vector<Shape> inputShapes(const Node &node) const;

    int indexOf(const std::string &name) const;

    std::string name_;
    Shape inputShape_;
    std::vector<Node> nodes_;
    std::map<std::string, int> byName_;

    // Execution state from the last forward()/backward().
    Tensor input_;
    std::vector<Tensor> acts_;
    std::vector<Tensor> grads_;
    Tensor inputGrad_;

    // Steady-state execution plan: per-node pointer tables into
    // input_/acts_/grads_, sized once per topology so repeated
    // forward()/backward() calls build no per-node vectors. Rebuilt
    // whenever the node count changes (the only way this network's
    // topology can change); activation and gradient buffers are
    // likewise recycled, reallocating only on shape change.
    std::vector<std::vector<const Tensor *>> fwdIns_;
    std::vector<std::vector<Tensor *>> gradTargets_;
    std::vector<std::vector<Tensor>> gradScratch_;
};

} // namespace nn
} // namespace redeye

#endif // REDEYE_NN_NETWORK_HH
