/**
 * @file
 * Fixed-point weight quantization.
 *
 * RedEye stores kernel weights digitally and applies them through
 * 8-bit tunable capacitors (Section IV-A); the paper validates that
 * "ConvNet tasks can use 8-bit fixed-point weights with accurate
 * operation". quantizeTensor() emulates that storage: symmetric
 * uniform quantization to a signed n-bit grid scaled to the tensor's
 * absolute maximum.
 */

#ifndef REDEYE_NN_QUANTIZE_HH
#define REDEYE_NN_QUANTIZE_HH

#include <cstddef>

#include "tensor/tensor.hh"

namespace redeye {
namespace nn {

class Network;

/** Result of quantizing one tensor. */
struct QuantizationReport {
    double scale = 0.0;     ///< LSB step size
    double maxError = 0.0;  ///< largest introduced absolute error
    double rmsError = 0.0;  ///< RMS introduced error
};

/**
 * Quantize @p t in place to a symmetric signed @p bits grid
 * (levels -(2^(bits-1)-1) ... +(2^(bits-1)-1)) scaled to absMax.
 *
 * @return Error statistics of the rounding.
 */
QuantizationReport quantizeTensor(Tensor &t, unsigned bits);

/**
 * Quantize every parameter tensor of @p net to @p bits (RedEye default
 * 8). Returns the worst per-tensor RMS error.
 */
double quantizeNetworkWeights(Network &net, unsigned bits = 8);

} // namespace nn
} // namespace redeye

#endif // REDEYE_NN_QUANTIZE_HH
