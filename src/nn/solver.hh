/**
 * @file
 * SGD solver with momentum, L2 weight decay and step learning-rate
 * decay — the recipe the GoogLeNet and AlexNet papers train with,
 * scaled down for the in-repo MiniGoogLeNet.
 */

#ifndef REDEYE_NN_SOLVER_HH
#define REDEYE_NN_SOLVER_HH

#include <vector>

#include "nn/network.hh"

namespace redeye {
namespace nn {

/** Solver hyperparameters. */
struct SolverParams {
    double learningRate = 0.01;
    double momentum = 0.9;
    double weightDecay = 5e-4;
    double lrDecay = 0.5;        ///< multiplier applied every lrStep
    std::size_t lrStep = 0;      ///< iterations between decays (0 = off)
    double gradClip = 0.0;       ///< max gradient L2 norm (0 = off)
};

/** Momentum SGD over a Network's parameters. */
class SgdSolver
{
  public:
    SgdSolver(Network &net, SolverParams params);

    /**
     * Apply one update step from the currently accumulated parameter
     * gradients, then advance the iteration counter.
     */
    void step();

    /** Iterations applied so far. */
    std::size_t iteration() const { return iteration_; }

    /** Learning rate currently in effect. */
    double currentLearningRate() const;

    const SolverParams &params() const { return params_; }

  private:
    Network &net_;
    SolverParams params_;
    std::size_t iteration_ = 0;
    std::vector<Tensor> velocity_;
};

} // namespace nn
} // namespace redeye

#endif // REDEYE_NN_SOLVER_HH
