#include "noise/snr.hh"

#include <cmath>
#include <limits>

#include "core/logging.hh"

namespace redeye {
namespace noise {

double
noiseSigmaForSnr(double signal_rms, double snr_db)
{
    panic_if(signal_rms < 0.0, "negative RMS");
    return signal_rms / std::pow(10.0, snr_db / 20.0);
}

double
snrFromSigma(double signal_rms, double sigma)
{
    if (sigma <= 0.0)
        return std::numeric_limits<double>::infinity();
    if (signal_rms <= 0.0)
        return -std::numeric_limits<double>::infinity();
    return 20.0 * std::log10(signal_rms / sigma);
}

double
idealQuantizerSnrDb(unsigned bits)
{
    return 6.0206 * static_cast<double>(bits) + 1.7609;
}

double
quantizerRmsError(double lsb)
{
    return lsb / std::sqrt(12.0);
}

double
combineNoiseSigmas(double sigma_a, double sigma_b)
{
    return std::sqrt(sigma_a * sigma_a + sigma_b * sigma_b);
}

double
cascadedSnrDb(double per_stage_snr_db, std::size_t stages)
{
    if (stages == 0)
        return std::numeric_limits<double>::infinity();
    // Noise powers add: SNR_total = SNR_stage - 10 log10(stages).
    return per_stage_snr_db -
           10.0 * std::log10(static_cast<double>(stages));
}

} // namespace noise
} // namespace redeye
