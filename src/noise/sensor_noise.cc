#include "noise/sensor_noise.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace redeye {
namespace noise {

SensorSamplingLayer::SensorSamplingLayer(std::string name,
                                         SensorParams params, Rng rng)
    : Layer(std::move(name)), params_(params), seed_(rng.raw()),
      patternRng_(rng.fork())
{
    fatal_if(params_.gamma <= 0.0, "sensor '", this->name(),
             "': gamma must be positive");
    fatal_if(params_.fullWellElectrons <= 0.0, "sensor '", this->name(),
             "': full-well capacity must be positive");
    fatal_if(params_.illuminationScale <= 0.0, "sensor '", this->name(),
             "': illumination scale must be positive");
}

Shape
SensorSamplingLayer::outputShape(const std::vector<Shape> &in) const
{
    fatal_if(in.size() != 1, "sensor '", name(), "' takes one input");
    return in[0];
}

void
SensorSamplingLayer::materializeFixedPattern(const Shape &per_item)
{
    if (prnuGain_.shape() == per_item)
        return;
    // Draw the die's static pattern once from a dedicated stream so
    // that shot-noise consumption does not change the pattern.
    Rng pattern_rng = patternRng_.fork();
    prnuGain_ = Tensor(per_item);
    dsnuOffset_ = Tensor(per_item);
    prnuGain_.fillGaussian(pattern_rng, 1.0f,
                           static_cast<float>(params_.prnuSigma));
    dsnuOffset_.fillGaussian(pattern_rng, 0.0f,
                             static_cast<float>(params_.dsnuSigma));
}

void
SensorSamplingLayer::forward(const std::vector<const Tensor *> &in,
                             Tensor &out, ExecContext &ctx)
{
    const Tensor &x = *in[0];
    const Shape &s = x.shape();
    if (out.shape() != s)
        out = Tensor(s);

    if (!enabled_) {
        out.vec() = x.vec();
        return;
    }

    const Shape per_item(1, s.c, s.h, s.w);
    materializeFixedPattern(per_item);

    const double well = params_.fullWellElectrons *
                        params_.illuminationScale;
    const std::size_t slice = s.sliceSize();

    // One counter-based stream per image (core/rng.hh): sampled
    // values are bit-identical at any thread count or batch split.
    const std::uint64_t pass = pass_++;
    parallelFor(ctx, s.n, [&](std::size_t n) {
        Rng stream = streamRng(seed_, pass, n);
        const float *xi = x.data() + n * slice;
        float *oi = out.data() + n * slice;
        for (std::size_t i = 0; i < slice; ++i) {
            // sRGB-style value in [0, 1] back to linear intensity.
            const double v = std::clamp(static_cast<double>(xi[i]),
                                        0.0, 1.0);
            double linear = std::pow(v, params_.gamma);

            if (params_.enablePoisson) {
                const double electrons = linear * well;
                linear =
                    static_cast<double>(stream.poisson(electrons)) /
                    well;
            }
            if (params_.enableFixedPattern) {
                linear = linear * prnuGain_[i] + dsnuOffset_[i];
            }
            if (params_.readNoiseSigma > 0.0) {
                linear += stream.gaussian(0.0, params_.readNoiseSigma);
            }
            oi[i] = static_cast<float>(linear);
        }
    });
}

void
SensorSamplingLayer::backward(const std::vector<const Tensor *> &in,
                              const Tensor &out, const Tensor &out_grad,
                              std::vector<Tensor> &in_grads,
                              ExecContext &ctx)
{
    (void)in;
    (void)out;
    (void)ctx;
    in_grads[0].add(out_grad);
}

double
SensorSamplingLayer::expectedSnrDb() const
{
    // Mid-scale pixel: signal = 0.5 full scale. Shot-noise sigma in
    // full-scale units is sqrt(N) / well for N collected electrons.
    const double well = params_.fullWellElectrons *
                        params_.illuminationScale;
    const double electrons = 0.5 * well;
    const double shot_sigma = std::sqrt(electrons) / well;
    double var = shot_sigma * shot_sigma;
    if (params_.enableFixedPattern) {
        var += 0.5 * 0.5 * params_.prnuSigma * params_.prnuSigma;
        var += params_.dsnuSigma * params_.dsnuSigma;
    }
    var += params_.readNoiseSigma * params_.readNoiseSigma;
    return 10.0 * std::log10(0.25 / var);
}

} // namespace noise
} // namespace redeye
