#include "noise/quantization_layer.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace redeye {
namespace noise {

QuantizationNoiseLayer::QuantizationNoiseLayer(std::string name,
                                               unsigned bits, Rng rng,
                                               QuantizationModel model)
    : Layer(std::move(name)), bits_(bits), seed_(rng.raw()),
      model_(model)
{
    setBits(bits);
}

void
QuantizationNoiseLayer::setBits(unsigned bits)
{
    fatal_if(bits < 1 || bits > 16, "quantization '", name(),
             "': bits must be in [1, 16], got ", bits);
    bits_ = bits;
}

Shape
QuantizationNoiseLayer::outputShape(const std::vector<Shape> &in) const
{
    fatal_if(in.size() != 1, "quantization '", name(),
             "' takes one input");
    return in[0];
}

void
QuantizationNoiseLayer::forward(const std::vector<const Tensor *> &in,
                                Tensor &out, ExecContext &ctx)
{
    const Tensor &x = *in[0];
    if (out.shape() != x.shape())
        out = Tensor(x.shape());

    if (!enabled_ || x.empty()) {
        out.vec() = x.vec();
        lastLsb_ = 0.0;
        return;
    }

    const float swing = swing_ ? *swing_ : x.absMax();
    if (swing == 0.0f) {
        out.vec() = x.vec();
        lastLsb_ = 0.0;
        return;
    }

    // Full scale [-swing, +swing] divided into 2^bits levels.
    const double levels = std::pow(2.0, static_cast<double>(bits_));
    const double lsb = 2.0 * static_cast<double>(swing) / levels;
    lastLsb_ = lsb;

    if (model_ == QuantizationModel::AdditiveUniform) {
        // One counter-based stream per batch item (core/rng.hh):
        // noise is bit-identical at any thread count.
        const std::size_t slice = x.shape().sliceSize();
        const std::uint64_t pass = pass_++;
        parallelFor(ctx, x.shape().n, [&](std::size_t n) {
            Rng stream = streamRng(seed_, pass, n);
            const std::size_t begin = n * slice;
            for (std::size_t i = begin; i < begin + slice; ++i) {
                const double e = stream.uniform(-lsb / 2.0, lsb / 2.0);
                out[i] = x[i] + static_cast<float>(e);
            }
        });
    } else {
        parallelForChunks(
            ctx, x.size(),
            [&](std::size_t begin, std::size_t end, std::size_t) {
                for (std::size_t i = begin; i < end; ++i) {
                    const double clipped =
                        std::clamp(static_cast<double>(x[i]),
                                   -static_cast<double>(swing),
                                   static_cast<double>(swing));
                    // Mid-rise grid: centers at (k + 0.5) * lsb
                    // - swing.
                    double code = std::floor((clipped + swing) / lsb);
                    code = std::clamp(code, 0.0, levels - 1.0);
                    out[i] = static_cast<float>((code + 0.5) * lsb -
                                                swing);
                }
            });
    }
}

void
QuantizationNoiseLayer::backward(const std::vector<const Tensor *> &in,
                                 const Tensor &out,
                                 const Tensor &out_grad,
                                 std::vector<Tensor> &in_grads,
                                 ExecContext &ctx)
{
    (void)in;
    (void)out;
    (void)ctx;
    // Straight-through estimator: quantization error is treated as
    // additive noise for gradient purposes.
    in_grads[0].add(out_grad);
}

} // namespace noise
} // namespace redeye
