/**
 * @file
 * SNR arithmetic shared by the noise layers and the analog energy
 * model.
 *
 * Throughout the simulator SNR is a power ratio in dB:
 * SNR = 10 log10(P_signal / P_noise). For a signal with RMS amplitude
 * s and additive zero-mean noise of standard deviation sigma,
 * SNR = 20 log10(s / sigma).
 */

#ifndef REDEYE_NOISE_SNR_HH
#define REDEYE_NOISE_SNR_HH

#include <cstddef>

namespace redeye {
namespace noise {

/** Noise standard deviation that yields @p snr_db for RMS @p rms. */
double noiseSigmaForSnr(double signal_rms, double snr_db);

/** SNR in dB of signal RMS @p rms with noise sigma @p sigma. */
double snrFromSigma(double signal_rms, double sigma);

/**
 * Quantization SNR of an ideal mid-rise quantizer digitizing a
 * full-scale signal with @p bits: 6.02*bits + 1.76 dB.
 */
double idealQuantizerSnrDb(unsigned bits);

/**
 * RMS quantization error of an ideal quantizer with LSB step @p lsb:
 * lsb / sqrt(12).
 */
double quantizerRmsError(double lsb);

/** Combine two independent noise powers (variances add). */
double combineNoiseSigmas(double sigma_a, double sigma_b);

/**
 * SNR after a chain of @p stages identical operations each adding
 * noise at @p per_stage_snr_db relative to the same signal power.
 */
double cascadedSnrDb(double per_stage_snr_db, std::size_t stages);

} // namespace noise
} // namespace redeye

#endif // REDEYE_NOISE_SNR_HH
