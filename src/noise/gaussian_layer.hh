/**
 * @file
 * Gaussian noise layer.
 *
 * Models "noise inflicted by data transactions and computational
 * operations" (Section III-D): i.i.d. zero-mean Gaussian noise added
 * to its input, with standard deviation chosen so that the layer's
 * output SNR relative to the input signal power equals the programmed
 * value. Inserted after sampling, convolution and normalization layers
 * by the noise injector.
 */

#ifndef REDEYE_NOISE_GAUSSIAN_LAYER_HH
#define REDEYE_NOISE_GAUSSIAN_LAYER_HH

#include "core/rng.hh"
#include "nn/layer.hh"

namespace redeye {
namespace noise {

/** Additive Gaussian noise parameterized by SNR in dB. */
class GaussianNoiseLayer : public nn::Layer
{
  public:
    /**
     * @param snr_db Programmed SNR; +inf disables the noise.
     * @param rng Seeds the layer's private counter-based per-item
     * streams (see core/rng.hh).
     */
    GaussianNoiseLayer(std::string name, double snr_db, Rng rng);

    nn::LayerKind
    kind() const override
    {
        return nn::LayerKind::GaussianNoise;
    }

    Shape outputShape(const std::vector<Shape> &in) const override;

    using Layer::forward;
    using Layer::backward;

    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 ExecContext &ctx) override;

    /** Noise is independent of the signal: gradients pass through. */
    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &out_grad,
                  std::vector<Tensor> &in_grads,
                  ExecContext &ctx) override;

    /** Reprogram the SNR at run time (the RedEye noise-admission knob). */
    void setSnrDb(double snr_db) { snrDb_ = snr_db; }

    double snrDb() const { return snrDb_; }

    /** Enable/disable without changing the programmed SNR. */
    void setEnabled(bool enabled) { enabled_ = enabled; }

    bool enabled() const { return enabled_; }

    /** Sigma used by the most recent forward pass (0 if disabled). */
    double lastSigma() const { return lastSigma_; }

  private:
    double snrDb_;
    std::uint64_t seed_;     ///< base of the per-item noise streams
    std::uint64_t pass_ = 0; ///< counts noisy forward passes
    bool enabled_ = true;
    double lastSigma_ = 0.0;
};

} // namespace noise
} // namespace redeye

#endif // REDEYE_NOISE_GAUSSIAN_LAYER_HH
