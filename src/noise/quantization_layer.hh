/**
 * @file
 * Quantization noise layer.
 *
 * Represents "error introduced at the circuit output by truncating to
 * finite ADC resolution" (Section III-D). Two models are provided:
 *
 *  - AdditiveUniform (paper's formulation): uniform noise of +-LSB/2
 *    across the signal, with the LSB derived from the signal range and
 *    the programmed resolution q.
 *  - RoundToGrid: actually snap values to the 2^q-level grid, i.e. the
 *    digital representation the host receives. This additionally
 *    captures range clipping.
 *
 * Both reduce to the same noise power for a signal that exercises the
 * full range.
 */

#ifndef REDEYE_NOISE_QUANTIZATION_LAYER_HH
#define REDEYE_NOISE_QUANTIZATION_LAYER_HH

#include <optional>

#include "core/rng.hh"
#include "nn/layer.hh"

namespace redeye {
namespace noise {

/** How quantization error is realized. */
enum class QuantizationModel {
    AdditiveUniform,
    RoundToGrid,
};

/** ADC truncation noise parameterized by resolution (bits). */
class QuantizationNoiseLayer : public nn::Layer
{
  public:
    /**
     * @param bits ADC resolution q (1..16).
     * @param rng Seeds the per-item counter-based streams used by the
     * AdditiveUniform model (see core/rng.hh).
     */
    QuantizationNoiseLayer(std::string name, unsigned bits, Rng rng,
                           QuantizationModel model =
                               QuantizationModel::AdditiveUniform);

    nn::LayerKind
    kind() const override
    {
        return nn::LayerKind::QuantizationNoise;
    }

    Shape outputShape(const std::vector<Shape> &in) const override;

    using Layer::forward;
    using Layer::backward;

    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 ExecContext &ctx) override;

    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &out_grad,
                  std::vector<Tensor> &in_grads,
                  ExecContext &ctx) override;

    /** Reprogram the resolution (the dynamic quantization mechanism). */
    void setBits(unsigned bits);

    unsigned bits() const { return bits_; }

    void setModel(QuantizationModel model) { model_ = model; }

    QuantizationModel model() const { return model_; }

    /**
     * Fix the full-scale range to [-swing, +swing] instead of deriving
     * it from each tensor's absolute maximum.
     */
    void setSwing(std::optional<float> swing) { swing_ = swing; }

    void setEnabled(bool enabled) { enabled_ = enabled; }

    bool enabled() const { return enabled_; }

    /** LSB used by the most recent forward pass. */
    double lastLsb() const { return lastLsb_; }

  private:
    unsigned bits_;
    std::uint64_t seed_;     ///< base of the per-item noise streams
    std::uint64_t pass_ = 0; ///< counts noisy forward passes
    QuantizationModel model_;
    std::optional<float> swing_;
    bool enabled_ = true;
    double lastLsb_ = 0.0;
};

} // namespace noise
} // namespace redeye

#endif // REDEYE_NOISE_QUANTIZATION_LAYER_HH
