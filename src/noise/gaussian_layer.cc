#include "noise/gaussian_layer.hh"

#include <cmath>

#include "core/logging.hh"
#include "noise/snr.hh"

namespace redeye {
namespace noise {

GaussianNoiseLayer::GaussianNoiseLayer(std::string name, double snr_db,
                                       Rng rng)
    : Layer(std::move(name)), snrDb_(snr_db), seed_(rng.raw())
{
}

Shape
GaussianNoiseLayer::outputShape(const std::vector<Shape> &in) const
{
    fatal_if(in.size() != 1, "gaussian noise '", name(),
             "' takes one input");
    return in[0];
}

void
GaussianNoiseLayer::forward(const std::vector<const Tensor *> &in,
                            Tensor &out, ExecContext &ctx)
{
    const Tensor &x = *in[0];
    if (out.shape() != x.shape())
        out = Tensor(x.shape());

    if (!enabled_ || std::isinf(snrDb_) || x.empty()) {
        out.vec() = x.vec();
        lastSigma_ = 0.0;
        return;
    }

    // Signal power is the mean square of the input tensor.
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        sum_sq += static_cast<double>(x[i]) * x[i];
    const double rms = std::sqrt(sum_sq /
                                 static_cast<double>(x.size()));
    const double sigma = noiseSigmaForSnr(rms, snrDb_);
    lastSigma_ = sigma;

    if (sigma == 0.0) {
        out.vec() = x.vec();
        return;
    }

    // One counter-based stream per batch item (core/rng.hh): noise is
    // bit-identical at any thread count and batch partition.
    const std::size_t slice = x.shape().sliceSize();
    const std::uint64_t pass = pass_++;
    parallelFor(ctx, x.shape().n, [&](std::size_t n) {
        Rng stream = streamRng(seed_, pass, n);
        const std::size_t begin = n * slice;
        for (std::size_t i = begin; i < begin + slice; ++i) {
            out[i] = x[i] +
                     static_cast<float>(stream.gaussian(0.0, sigma));
        }
    });
}

void
GaussianNoiseLayer::backward(const std::vector<const Tensor *> &in,
                             const Tensor &out, const Tensor &out_grad,
                             std::vector<Tensor> &in_grads,
                             ExecContext &ctx)
{
    (void)in;
    (void)out;
    (void)ctx;
    in_grads[0].add(out_grad);
}

} // namespace noise
} // namespace redeye
