/**
 * @file
 * Raw image sampling model.
 *
 * The evaluation "undoes gamma correction to simulate raw pixel
 * values" and "emulates photodiode noise and other analog sampling
 * effects by applying Poisson noise and fixed pattern noise in the
 * input layer" (Section V-A). SensorSamplingLayer implements that
 * front end:
 *
 *   1. inverse gamma (x^gamma) to linear photon counts,
 *   2. Poisson shot noise at a configurable full-well electron count,
 *   3. static per-pixel fixed-pattern noise (gain and offset),
 *   4. additive Gaussian read noise,
 *   5. renormalization back to [0, 1].
 */

#ifndef REDEYE_NOISE_SENSOR_NOISE_HH
#define REDEYE_NOISE_SENSOR_NOISE_HH

#include "core/rng.hh"
#include "nn/layer.hh"

namespace redeye {
namespace noise {

/** Photodiode/sampling model parameters. */
struct SensorParams {
    double gamma = 2.2;          ///< display gamma being undone
    double fullWellElectrons = 4000.0; ///< electrons at full scale
    double prnuSigma = 0.01;     ///< photo-response non-uniformity (gain)
    double dsnuSigma = 0.002;    ///< dark-signal non-uniformity (offset)
    double readNoiseSigma = 0.001; ///< additive read noise, full-scale units
    bool enablePoisson = true;
    bool enableFixedPattern = true;

    /**
     * Scene illumination scale factor; 1.0 is nominal. Low-light
     * operation (e.g. the paper's 1-lux discussion) reduces photon
     * counts and thus the achievable SNR.
     */
    double illuminationScale = 1.0;
};

/** Raw sampling front end as a network layer. */
class SensorSamplingLayer : public nn::Layer
{
  public:
    /**
     * @param rng Seeds the per-item counter-based shot/read-noise
     * streams (see core/rng.hh); the fixed-pattern maps are drawn once
     * from a fork of it (static per instance, as on a physical die).
     */
    SensorSamplingLayer(std::string name, SensorParams params, Rng rng);

    nn::LayerKind kind() const override { return nn::LayerKind::Custom; }

    Shape outputShape(const std::vector<Shape> &in) const override;

    using Layer::forward;
    using Layer::backward;

    void forward(const std::vector<const Tensor *> &in, Tensor &out,
                 ExecContext &ctx) override;

    /** Pass-through gradient (noise treated as additive). */
    void backward(const std::vector<const Tensor *> &in,
                  const Tensor &out, const Tensor &out_grad,
                  std::vector<Tensor> &in_grads,
                  ExecContext &ctx) override;

    const SensorParams &sensorParams() const { return params_; }

    void setEnabled(bool enabled) { enabled_ = enabled; }

    bool enabled() const { return enabled_; }

    /**
     * Pin the pass counter so the next forward() draws the noise of
     * pass @p pass (it then advances as usual). The streaming runtime
     * keys the counter to the frame index so that every replica of
     * this layer — one per stage worker — realizes the same noise for
     * the same frame, regardless of which worker serves it.
     */
    void setPass(std::uint64_t pass) { pass_ = pass; }

    /** Pass the next forward() will consume. */
    std::uint64_t pass() const { return pass_; }

    /**
     * Expected output SNR in dB for a mid-scale pixel under the
     * current parameters (shot-noise limited estimate).
     */
    double expectedSnrDb() const;

  private:
    void materializeFixedPattern(const Shape &per_item);

    SensorParams params_;
    std::uint64_t seed_;     ///< base of the per-item noise streams
    std::uint64_t pass_ = 0; ///< counts noisy forward passes
    Rng patternRng_;         ///< dedicated stream for the die pattern
    bool enabled_ = true;
    Tensor prnuGain_;   ///< per-pixel gain map (n == 1)
    Tensor dsnuOffset_; ///< per-pixel offset map (n == 1)
};

} // namespace noise
} // namespace redeye

#endif // REDEYE_NOISE_SENSOR_NOISE_HH
