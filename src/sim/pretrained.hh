/**
 * @file
 * Cached trained MiniGoogLeNet.
 *
 * The accuracy experiments need a trained classifier; training takes
 * about a minute. This helper trains once with a fixed, seeded
 * recipe and caches the weights next to the working directory, so
 * every bench/example/test process after the first loads instantly.
 * Results are bit-identical either way.
 */

#ifndef REDEYE_SIM_PRETRAINED_HH
#define REDEYE_SIM_PRETRAINED_HH

#include <memory>
#include <string>

#include "data/shapes_dataset.hh"
#include "nn/network.hh"

namespace redeye {
namespace sim {

/** The fixed dataset recipe paired with the pretrained weights. */
struct PretrainedSetup {
    std::unique_ptr<nn::Network> net; ///< trained, 8-bit weights
    data::Dataset val;                ///< held-out evaluation set
};

/**
 * Return the standard trained MiniGoogLeNet and its validation set.
 * Loads weights from @p cache_path when present; otherwise trains
 * (about a minute) and writes the cache.
 */
PretrainedSetup pretrainedMiniGoogLeNet(
    const std::string &cache_path = "redeye_mini_weights.bin",
    bool verbose = false);

/** Which classification task the pretrained model solves. */
enum class PretrainedTask {
    Standard, ///< high-contrast shapes; wide noise margin
    Hard,     ///< faint shapes in clutter; knee near the paper's
};

/**
 * Task-selected variant. The Hard task trains on
 * data::ShapesParams::hard() (cache "redeye_mini_hard_weights.bin"):
 * its smaller classification margin moves the accuracy-vs-SNR knee
 * up toward the paper's ImageNet behaviour.
 */
PretrainedSetup pretrainedMiniGoogLeNet(PretrainedTask task,
                                        bool verbose = false);

} // namespace sim
} // namespace redeye

#endif // REDEYE_SIM_PRETRAINED_HH
