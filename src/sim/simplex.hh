/**
 * @file
 * Nelder-Mead simplex minimizer.
 *
 * Section III-D: finding energy-optimal noise parameters is "an
 * intensive search over a parameter space of dimension R^(n+1) for n
 * Gaussian layers and 1 quantization layer. Such highly dimensional
 * searches would typically require tools such as the canonical
 * simplex search." This is that tool; the noise-parameter objective
 * lives in sim/experiments.
 */

#ifndef REDEYE_SIM_SIMPLEX_HH
#define REDEYE_SIM_SIMPLEX_HH

#include <functional>
#include <vector>

namespace redeye {
namespace sim {

/** Simplex search options. */
struct SimplexOptions {
    std::size_t maxIterations = 400;
    double tolerance = 1e-9; ///< value-spread convergence threshold
    double reflection = 1.0;
    double expansion = 2.0;
    double contraction = 0.5;
    double shrink = 0.5;
};

/** Search outcome. */
struct SimplexResult {
    std::vector<double> x;   ///< best point found
    double value = 0.0;      ///< objective at x
    std::size_t iterations = 0;
    std::size_t evaluations = 0;
    bool converged = false;
};

/**
 * Minimize @p objective starting from @p initial, with per-dimension
 * initial simplex steps @p steps.
 */
SimplexResult nelderMead(
    const std::function<double(const std::vector<double> &)> &objective,
    const std::vector<double> &initial,
    const std::vector<double> &steps,
    const SimplexOptions &options = SimplexOptions{});

} // namespace sim
} // namespace redeye

#endif // REDEYE_SIM_SIMPLEX_HH
