/**
 * @file
 * Nelder-Mead simplex minimizer.
 *
 * Section III-D: finding energy-optimal noise parameters is "an
 * intensive search over a parameter space of dimension R^(n+1) for n
 * Gaussian layers and 1 quantization layer. Such highly dimensional
 * searches would typically require tools such as the canonical
 * simplex search." This is that tool; the noise-parameter objective
 * lives in sim/experiments.
 *
 * Beyond the canonical loop the search supports two things the online
 * auto-tuner (src/tune) needs:
 *
 *  - **Box constraints**: with SimplexOptions::lower/upper set, every
 *    candidate vertex is clamped into the box before evaluation, so
 *    the objective is never probed outside its domain and the
 *    returned point always satisfies the bounds.
 *  - **Restarts**: a Nelder-Mead simplex can collapse — the vertices
 *    become (numerically) affinely dependent, most easily by starting
 *    with a zero step in some dimension or by shrinking against a
 *    boundary — after which no move can explore the lost dimensions.
 *    With SimplexOptions::restarts > 0 the search detects collapse
 *    (vertex spread below xTolerance) or premature convergence and
 *    re-seeds a fresh full-size simplex around the best point found,
 *    up to the restart budget. Deterministic: the restart offsets are
 *    the original steps (direction-flipped where the box demands it),
 *    not random.
 *
 * All orderings tie-break on vertex index, so the search is a pure
 * function of (objective, initial, steps, options) — byte-identical
 * across runs and platforms even when objective values tie exactly.
 * NaN objective values are treated as +infinity (a NaN region is
 * simply never moved into) instead of silently corrupting the
 * comparisons.
 */

#ifndef REDEYE_SIM_SIMPLEX_HH
#define REDEYE_SIM_SIMPLEX_HH

#include <functional>
#include <vector>

namespace redeye {
namespace sim {

/** Simplex search options. */
struct SimplexOptions {
    std::size_t maxIterations = 400;
    double tolerance = 1e-9; ///< value-spread convergence threshold
    double reflection = 1.0;
    double expansion = 2.0;
    double contraction = 0.5;
    double shrink = 0.5;

    /**
     * Box constraints, one entry per dimension (empty = unbounded).
     * When set, candidates are clamped into [lower, upper] before
     * evaluation and the result respects the bounds.
     */
    std::vector<double> lower;
    std::vector<double> upper;

    /**
     * Restart budget: when the simplex converges or collapses with
     * restarts remaining, re-seed a full-size simplex around the
     * incumbent best instead of stopping. 0 (the default) reproduces
     * the single-pass search.
     */
    std::size_t restarts = 0;

    /**
     * Vertex-spread collapse threshold: when the max per-dimension
     * spread of the simplex falls below this while the value spread
     * is still above tolerance, the simplex is declared degenerate
     * (restart or stop). 0 disables the check.
     */
    double xTolerance = 0.0;
};

/** Search outcome. */
struct SimplexResult {
    std::vector<double> x;   ///< best point found
    double value = 0.0;      ///< objective at x
    std::size_t iterations = 0;
    std::size_t evaluations = 0;
    std::size_t restarts = 0; ///< re-seeds actually taken
    bool converged = false;
};

/**
 * Minimize @p objective starting from @p initial, with per-dimension
 * initial simplex steps @p steps. A zero step would leave the simplex
 * permanently degenerate in that dimension, so it is replaced by a
 * small scale-relative offset.
 */
SimplexResult nelderMead(
    const std::function<double(const std::vector<double> &)> &objective,
    const std::vector<double> &initial,
    const std::vector<double> &steps,
    const SimplexOptions &options = SimplexOptions{});

} // namespace sim
} // namespace redeye

#endif // REDEYE_SIM_SIMPLEX_HH
