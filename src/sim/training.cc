#include "sim/training.hh"

#include <algorithm>
#include <numeric>

#include "core/logging.hh"
#include "core/rng.hh"
#include "nn/softmax.hh"

namespace redeye {
namespace sim {

TrainResult
trainClassifier(nn::Network &net, const data::Dataset &train_set,
                const TrainOptions &options)
{
    fatal_if(train_set.size() == 0, "empty training set");
    fatal_if(options.batchSize == 0, "batch size must be positive");
    fatal_if(options.epochs == 0, "need at least one epoch");

    nn::SgdSolver solver(net, options.solver);
    Rng shuffle_rng(options.shuffleSeed);
    ThreadPool pool(resolveThreadCount(options.threads));
    ExecContext ctx(pool);
    net.setTraining(true);

    TrainResult result;
    std::vector<std::size_t> order(train_set.size());
    std::iota(order.begin(), order.end(), 0);

    Tensor loss_grad;
    for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
        std::shuffle(order.begin(), order.end(),
                     shuffle_rng.engine());
        double epoch_loss = 0.0;
        std::size_t batches = 0;

        for (std::size_t start = 0; start < order.size();
             start += options.batchSize) {
            const std::size_t count = std::min(options.batchSize,
                                               order.size() - start);
            std::vector<std::size_t> idx(order.begin() + start,
                                         order.begin() + start +
                                             count);
            data::Dataset batch = data::makeBatch(train_set, idx);

            const Tensor &logits = net.forward(batch.images, ctx);
            const double loss = nn::softmaxCrossEntropy(
                logits, batch.labels, loss_grad);
            net.zeroGrads();
            net.backward(loss_grad, ctx);
            solver.step();

            epoch_loss += loss;
            ++batches;
            ++result.iterations;
        }

        result.finalLoss = epoch_loss /
                           static_cast<double>(batches);
        if (options.verbose) {
            inform("epoch ", epoch + 1, "/", options.epochs,
                   " mean loss ", result.finalLoss, " lr ",
                   solver.currentLearningRate());
        }
    }

    net.setTraining(false);
    return result;
}

} // namespace sim
} // namespace redeye
