#include "sim/pretrained.hh"

#include <filesystem>
#include <unistd.h>

#include "core/logging.hh"
#include "core/rng.hh"
#include "models/mini_googlenet.hh"
#include "nn/quantize.hh"
#include "nn/serialize.hh"
#include "sim/training.hh"

namespace redeye {
namespace sim {

namespace {

PretrainedSetup
buildPretrained(const std::string &cache_path, bool verbose,
                const data::ShapesParams &sp, std::size_t epochs)
{
    PretrainedSetup setup;
    Rng wrng(0x517);
    setup.net = models::buildMiniGoogLeNet(data::kShapeClasses, wrng);

    Rng drng(0x11ab);
    const auto train = data::generateShapes(80, sp, drng);
    setup.val = data::generateShapes(20, sp, drng);

    if (!cache_path.empty() &&
        std::filesystem::exists(cache_path)) {
        nn::loadWeights(*setup.net, cache_path);
        return setup;
    }

    if (verbose)
        inform("training MiniGoogLeNet (first run; ~1 minute)...");
    TrainOptions opt;
    opt.epochs = epochs;
    opt.solver.lrStep = 150;
    opt.solver.lrDecay = 0.5;
    opt.verbose = verbose;
    trainClassifier(*setup.net, train, opt);
    nn::quantizeNetworkWeights(*setup.net, 8);

    if (!cache_path.empty()) {
        // Write-and-rename so concurrent first runs (parallel test
        // processes) never observe a torn cache.
        const std::string tmp = cache_path + ".tmp." +
                                std::to_string(::getpid());
        nn::saveWeights(*setup.net, tmp);
        std::filesystem::rename(tmp, cache_path);
    }
    return setup;
}

} // namespace

PretrainedSetup
pretrainedMiniGoogLeNet(const std::string &cache_path, bool verbose)
{
    return buildPretrained(cache_path, verbose,
                           data::ShapesParams{}, 10);
}

PretrainedSetup
pretrainedMiniGoogLeNet(PretrainedTask task, bool verbose)
{
    if (task == PretrainedTask::Standard)
        return pretrainedMiniGoogLeNet("redeye_mini_weights.bin",
                                       verbose);
    // The hard task converges slower; give it more epochs.
    return buildPretrained("redeye_mini_hard_weights.bin", verbose,
                           data::ShapesParams::hard(), 16);
}

} // namespace sim
} // namespace redeye
