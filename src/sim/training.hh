/**
 * @file
 * Classifier training loop for the in-repo accuracy experiments.
 *
 * Trains a network (typically MiniGoogLeNet) on a labeled dataset
 * with momentum SGD and softmax-cross-entropy loss. The loop is
 * deterministic for a given seed.
 */

#ifndef REDEYE_SIM_TRAINING_HH
#define REDEYE_SIM_TRAINING_HH

#include <cstdint>

#include "core/exec.hh"
#include "data/shapes_dataset.hh"
#include "nn/solver.hh"

namespace redeye {
namespace sim {

/** Training options. */
struct TrainOptions {
    std::size_t epochs = 8;
    std::size_t batchSize = 32;
    nn::SolverParams solver;
    std::uint64_t shuffleSeed = 0x7a11;
    bool verbose = false;

    /**
     * Worker threads for batch-parallel execution: 1 = serial
     * (default), 0 = auto (REDEYE_THREADS or hardware concurrency).
     * The loop stays deterministic for a fixed thread count; backward
     * gradient reductions may round differently across counts.
     */
    std::size_t threads = 1;

    TrainOptions()
    {
        solver.learningRate = 0.02;
        solver.momentum = 0.9;
        solver.weightDecay = 1e-4;
        solver.gradClip = 5.0;
    }
};

/** Training outcome. */
struct TrainResult {
    double finalLoss = 0.0;
    std::size_t iterations = 0;
};

/**
 * Train @p net on @p train_set. The network's final layer must emit
 * (n, classes, 1, 1) logits.
 */
TrainResult trainClassifier(nn::Network &net,
                            const data::Dataset &train_set,
                            const TrainOptions &options =
                                TrainOptions{});

} // namespace sim
} // namespace redeye

#endif // REDEYE_SIM_TRAINING_HH
