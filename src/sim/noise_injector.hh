/**
 * @file
 * Noise injection transform (Section III-D).
 *
 * "Starting with ConvNet models designed for execution on digital
 * processors, we inject two types of noise layers into the processing
 * flow": a Gaussian noise layer after every analog operation module
 * (convolution, normalization, pooling) and a quantization noise
 * layer at the A/D boundary. The injector rewrites a Network in place
 * and returns handles so sweeps can retune SNR/bits without
 * rebuilding the graph.
 */

#ifndef REDEYE_SIM_NOISE_INJECTOR_HH
#define REDEYE_SIM_NOISE_INJECTOR_HH

#include <string>
#include <vector>

#include "noise/gaussian_layer.hh"
#include "noise/quantization_layer.hh"

namespace redeye {

namespace nn {
class Network;
}

namespace sim {

/** Injection parameters. */
struct NoiseSpec {
    double snrDb = 40.0;  ///< initial SNR of every Gaussian layer
    unsigned adcBits = 4; ///< initial ADC resolution at the boundary
    noise::QuantizationModel quantModel =
        noise::QuantizationModel::AdditiveUniform;
    std::uint64_t seed = 0x401fe;
};

/** Handles to the injected layers. */
struct InjectionHandles {
    std::vector<noise::GaussianNoiseLayer *> gaussians;
    noise::QuantizationNoiseLayer *quantization = nullptr;

    /** Reprogram every Gaussian layer's SNR. */
    void setSnrDb(double snr_db);

    /** Reprogram the boundary ADC resolution. */
    void setAdcBits(unsigned bits);

    /** Enable/disable all injected noise. */
    void setEnabled(bool enabled);
};

/**
 * Inject noise layers after every convolution, LRN, pooling and
 * average-pooling layer of @p analog_layers, and a quantization
 * layer after the last analog layer (the cut). The listed layers
 * must exist in @p net.
 */
InjectionHandles injectNoise(
    nn::Network &net, const std::vector<std::string> &analog_layers,
    const NoiseSpec &spec);

} // namespace sim
} // namespace redeye

#endif // REDEYE_SIM_NOISE_INJECTOR_HH
