/**
 * @file
 * Shared experiment runners behind the bench binaries: the GoogLeNet
 * depth sweep (Figure 7), noise sweeps (Figures 9/10), and the
 * noise-parameter optimizer the paper's developer workflow describes.
 */

#ifndef REDEYE_SIM_EXPERIMENTS_HH
#define REDEYE_SIM_EXPERIMENTS_HH

#include <memory>
#include <vector>

#include "data/shapes_dataset.hh"
#include "redeye/energy_model.hh"
#include "sim/evaluator.hh"
#include "sim/noise_injector.hh"

namespace redeye {
namespace sim {

/** One row of the Figure 7 depth sweep. */
struct DepthRow {
    unsigned depth = 0;
    std::size_t analogMacs = 0;
    double analogEnergyJ = 0.0; ///< MAC + memory + comparator + ADC
    double totalEnergyJ = 0.0;  ///< + controller
    double frameTimeS = 0.0;
    double outputBytes = 0.0;
    double digitalTailMacs = 0.0;
    Shape cutShape;
    arch::EnergyBreakdown breakdown;
};

/**
 * Run the GoogLeNet depth sweep (Depth1..Depth5) under @p config,
 * returning one row per partition.
 */
std::vector<DepthRow> googLeNetDepthSweep(
    const arch::RedEyeConfig &config,
    std::size_t frame_size = 227);

/**
 * Analog ConvNet processing energy (MAC + memory + comparator,
 * excluding readout and controller) of GoogLeNet Depth @p depth at
 * Gaussian noise admission @p snr_db. The solid curve of Figure 9.
 */
double convNetEnergyAtSnr(unsigned depth, double snr_db,
                          std::size_t frame_size = 227);

/**
 * Quantization (readout) energy of GoogLeNet Depth @p depth at ADC
 * resolution @p bits. The solid curve of Figure 10.
 */
double quantizationEnergyAtBits(unsigned depth, unsigned bits,
                                std::size_t frame_size = 227);

/** One point of an accuracy-vs-noise sweep. */
struct AccuracyPoint {
    double snrDb = 0.0;
    unsigned adcBits = 0;
    double top1 = 0.0;
    double topN = 0.0;
};

/**
 * Measure accuracy of the noise-injected network @p net over
 * @p dataset for each SNR in @p snrs (ADC fixed at @p bits).
 */
std::vector<AccuracyPoint> accuracyVsSnr(
    nn::Network &net, InjectionHandles &handles,
    const data::Dataset &dataset, const std::vector<double> &snrs,
    unsigned bits, const EvalOptions &options = EvalOptions{});

/**
 * Measure accuracy for each ADC resolution in @p bits_list (Gaussian
 * SNR fixed at @p snr_db).
 */
std::vector<AccuracyPoint> accuracyVsBits(
    nn::Network &net, InjectionHandles &handles,
    const data::Dataset &dataset,
    const std::vector<unsigned> &bits_list, double snr_db,
    const EvalOptions &options = EvalOptions{});

/** Result of the noise-parameter search. */
struct NoiseTuningResult {
    double snrDb = 0.0;
    unsigned adcBits = 0;
    double accuracy = 0.0;
    double energyJ = 0.0;
    std::size_t evaluations = 0;
};

/**
 * Search (simplex over SNR, sweep over q) for the minimum-energy
 * noise configuration of Depth @p depth keeping Top-N accuracy of
 * @p net on @p dataset at or above @p target_accuracy.
 */
NoiseTuningResult tuneNoiseParameters(
    nn::Network &net, InjectionHandles &handles,
    const data::Dataset &dataset, double target_accuracy,
    unsigned depth, const EvalOptions &options = EvalOptions{});

} // namespace sim
} // namespace redeye

#endif // REDEYE_SIM_EXPERIMENTS_HH
