#include "sim/noise_injector.hh"

#include <set>

#include "core/logging.hh"
#include "core/rng.hh"
#include "nn/network.hh"

namespace redeye {
namespace sim {

void
InjectionHandles::setSnrDb(double snr_db)
{
    for (auto *g : gaussians)
        g->setSnrDb(snr_db);
}

void
InjectionHandles::setAdcBits(unsigned bits)
{
    panic_if(!quantization, "no quantization layer injected");
    quantization->setBits(bits);
}

void
InjectionHandles::setEnabled(bool enabled)
{
    for (auto *g : gaussians)
        g->setEnabled(enabled);
    if (quantization)
        quantization->setEnabled(enabled);
}

InjectionHandles
injectNoise(nn::Network &net,
            const std::vector<std::string> &analog_layers,
            const NoiseSpec &spec)
{
    fatal_if(analog_layers.empty(), "empty partition");
    std::set<std::string> wanted(analog_layers.begin(),
                                 analog_layers.end());
    for (const auto &name : analog_layers) {
        fatal_if(!net.hasLayer(name), "network '", net.name(),
                 "' has no layer '", name, "'");
    }

    Rng rng(spec.seed);
    InjectionHandles handles;

    // Collect targets first: inserting while iterating would shift
    // positions under us.
    std::vector<std::string> targets;
    std::string cut;
    for (std::size_t i = 0; i < net.size(); ++i) {
        nn::Layer &layer = net.layerAt(i);
        if (!wanted.count(layer.name()))
            continue;
        cut = layer.name();
        switch (layer.kind()) {
          case nn::LayerKind::Convolution:
          case nn::LayerKind::LRN:
          case nn::LayerKind::MaxPool:
          case nn::LayerKind::AvgPool:
            targets.push_back(layer.name());
            break;
          default:
            break;
        }
    }
    fatal_if(cut.empty(), "partition has no layers");

    for (const auto &name : targets) {
        auto noise_layer = std::make_unique<noise::GaussianNoiseLayer>(
            name + "/gauss_noise", spec.snrDb, rng.fork());
        auto *raw = noise_layer.get();
        net.insertAfter(name, std::move(noise_layer));
        handles.gaussians.push_back(raw);
        if (name == cut)
            cut = raw->name(); // keep the quantizer outermost
    }

    auto quant = std::make_unique<noise::QuantizationNoiseLayer>(
        cut + "/quant_noise", spec.adcBits, rng.fork(),
        spec.quantModel);
    handles.quantization = quant.get();
    net.insertAfter(cut, std::move(quant));
    return handles;
}

} // namespace sim
} // namespace redeye
