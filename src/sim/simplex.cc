#include "sim/simplex.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace redeye {
namespace sim {

namespace {

using Point = std::vector<double>;

Point
affine(const Point &a, const Point &b, double t)
{
    // a + t * (b - a)
    Point out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] + t * (b[i] - a[i]);
    return out;
}

} // namespace

SimplexResult
nelderMead(
    const std::function<double(const std::vector<double> &)> &objective,
    const std::vector<double> &initial,
    const std::vector<double> &steps, const SimplexOptions &options)
{
    fatal_if(initial.empty(), "empty initial point");
    fatal_if(initial.size() != steps.size(),
             "initial point and steps differ in dimension");

    const std::size_t n = initial.size();
    SimplexResult result;

    // Build the initial simplex: the start plus one offset vertex
    // per dimension.
    std::vector<Point> verts(n + 1, initial);
    for (std::size_t i = 0; i < n; ++i)
        verts[i + 1][i] += steps[i];

    std::vector<double> values(n + 1);
    for (std::size_t i = 0; i <= n; ++i) {
        values[i] = objective(verts[i]);
        ++result.evaluations;
    }

    for (std::size_t iter = 0; iter < options.maxIterations; ++iter) {
        ++result.iterations;

        // Order vertices by objective value.
        std::vector<std::size_t> order(n + 1);
        for (std::size_t i = 0; i <= n; ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return values[a] < values[b];
                  });
        const std::size_t best = order.front();
        const std::size_t worst = order.back();
        const std::size_t second_worst = order[n - 1];

        if (std::fabs(values[worst] - values[best]) <
            options.tolerance) {
            result.converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        Point centroid(n, 0.0);
        for (std::size_t i = 0; i <= n; ++i) {
            if (i == worst)
                continue;
            for (std::size_t d = 0; d < n; ++d)
                centroid[d] += verts[i][d];
        }
        for (double &c : centroid)
            c /= static_cast<double>(n);

        // Reflection.
        Point reflected = affine(centroid, verts[worst],
                                 -options.reflection);
        const double f_ref = objective(reflected);
        ++result.evaluations;

        if (f_ref < values[best]) {
            // Expansion.
            Point expanded = affine(centroid, verts[worst],
                                    -options.expansion);
            const double f_exp = objective(expanded);
            ++result.evaluations;
            if (f_exp < f_ref) {
                verts[worst] = std::move(expanded);
                values[worst] = f_exp;
            } else {
                verts[worst] = std::move(reflected);
                values[worst] = f_ref;
            }
            continue;
        }
        if (f_ref < values[second_worst]) {
            verts[worst] = std::move(reflected);
            values[worst] = f_ref;
            continue;
        }

        // Contraction toward the centroid.
        Point contracted = affine(centroid, verts[worst],
                                  options.contraction);
        const double f_con = objective(contracted);
        ++result.evaluations;
        if (f_con < values[worst]) {
            verts[worst] = std::move(contracted);
            values[worst] = f_con;
            continue;
        }

        // Shrink toward the best vertex.
        for (std::size_t i = 0; i <= n; ++i) {
            if (i == best)
                continue;
            verts[i] = affine(verts[best], verts[i], options.shrink);
            values[i] = objective(verts[i]);
            ++result.evaluations;
        }
    }

    const auto best_it = std::min_element(values.begin(),
                                          values.end());
    result.value = *best_it;
    result.x = verts[static_cast<std::size_t>(
        std::distance(values.begin(), best_it))];
    return result;
}

} // namespace sim
} // namespace redeye
