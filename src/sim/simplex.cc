#include "sim/simplex.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/logging.hh"

namespace redeye {
namespace sim {

namespace {

using Point = std::vector<double>;

Point
affine(const Point &a, const Point &b, double t)
{
    // a + t * (b - a)
    Point out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] + t * (b[i] - a[i]);
    return out;
}

} // namespace

SimplexResult
nelderMead(
    const std::function<double(const std::vector<double> &)> &objective,
    const std::vector<double> &initial,
    const std::vector<double> &steps, const SimplexOptions &options)
{
    fatal_if(initial.empty(), "empty initial point");
    fatal_if(initial.size() != steps.size(),
             "initial point and steps differ in dimension");
    const bool bounded = !options.lower.empty();
    fatal_if(bounded && (options.lower.size() != initial.size() ||
                         options.upper.size() != initial.size()),
             "bounds and initial point differ in dimension");
    if (bounded) {
        for (std::size_t i = 0; i < initial.size(); ++i)
            fatal_if(options.lower[i] > options.upper[i],
                     "simplex lower bound above upper bound");
    }

    const std::size_t n = initial.size();
    SimplexResult result;

    auto clamp = [&](Point &p) {
        if (!bounded)
            return;
        for (std::size_t i = 0; i < n; ++i)
            p[i] = std::clamp(p[i], options.lower[i],
                              options.upper[i]);
    };
    // NaN guard: a NaN objective would silently misorder every
    // comparison below; treating it as +inf makes a NaN region
    // simply never-improving.
    auto eval = [&](const Point &p) {
        ++result.evaluations;
        const double v = objective(p);
        return std::isnan(v) ? std::numeric_limits<double>::infinity()
                             : v;
    };

    // A zero step spans no volume in its dimension — the simplex
    // would be degenerate from birth with no move able to repair it.
    // Substitute a small scale-relative offset.
    std::vector<double> eff_steps(steps);
    for (std::size_t i = 0; i < n; ++i) {
        if (eff_steps[i] == 0.0)
            eff_steps[i] = 1e-3 * (1.0 + std::fabs(initial[i]));
    }

    std::vector<Point> verts;
    std::vector<double> values;

    // Fresh full-size simplex around @p center: per dimension, offset
    // by the step in whichever direction the box leaves more room
    // (flipping rather than silently collapsing against a bound).
    auto build = [&](const Point &center) {
        Point base = center;
        clamp(base);
        verts.assign(n + 1, base);
        for (std::size_t i = 0; i < n; ++i) {
            double up = base[i] + eff_steps[i];
            double down = base[i] - eff_steps[i];
            if (bounded) {
                up = std::clamp(up, options.lower[i],
                                options.upper[i]);
                down = std::clamp(down, options.lower[i],
                                  options.upper[i]);
            }
            verts[i + 1][i] =
                std::fabs(up - base[i]) >= std::fabs(down - base[i])
                    ? up
                    : down;
        }
        values.resize(n + 1);
        for (std::size_t i = 0; i <= n; ++i)
            values[i] = eval(verts[i]);
    };

    Point best_x = initial;
    clamp(best_x);
    double best_value = std::numeric_limits<double>::infinity();
    auto noteBest = [&]() {
        for (std::size_t i = 0; i <= n; ++i) {
            if (values[i] < best_value) {
                best_value = values[i];
                best_x = verts[i];
            }
        }
    };

    for (std::size_t pass = 0; pass <= options.restarts; ++pass) {
        if (pass > 0) {
            ++result.restarts;
            build(best_x);
            noteBest();
        } else {
            build(initial);
        }
        const double pass_start_value = best_value;

        bool pass_converged = false;
        bool collapsed = false;
        while (result.iterations < options.maxIterations) {
            ++result.iterations;

            // Order vertices by objective value, ties broken by
            // index so the ordering (and with it the whole search)
            // is deterministic even on exact value ties.
            std::vector<std::size_t> order(n + 1);
            for (std::size_t i = 0; i <= n; ++i)
                order[i] = i;
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          if (values[a] != values[b])
                              return values[a] < values[b];
                          return a < b;
                      });
            const std::size_t best = order.front();
            const std::size_t worst = order.back();
            const std::size_t second_worst = order[n - 1];

            if (std::fabs(values[worst] - values[best]) <
                options.tolerance) {
                pass_converged = true;
                break;
            }

            // Collapse check: a simplex whose vertices have stopped
            // spanning the space cannot move anywhere new, even
            // though its value spread may still be large (e.g. a
            // cliff in the objective).
            if (options.xTolerance > 0.0) {
                double spread = 0.0;
                for (std::size_t d = 0; d < n; ++d) {
                    double lo = verts[0][d];
                    double hi = verts[0][d];
                    for (std::size_t i = 1; i <= n; ++i) {
                        lo = std::min(lo, verts[i][d]);
                        hi = std::max(hi, verts[i][d]);
                    }
                    spread = std::max(spread, hi - lo);
                }
                if (spread < options.xTolerance) {
                    collapsed = true;
                    break;
                }
            }

            // Centroid of all but the worst vertex.
            Point centroid(n, 0.0);
            for (std::size_t i = 0; i <= n; ++i) {
                if (i == worst)
                    continue;
                for (std::size_t d = 0; d < n; ++d)
                    centroid[d] += verts[i][d];
            }
            for (double &c : centroid)
                c /= static_cast<double>(n);

            // Reflection.
            Point reflected = affine(centroid, verts[worst],
                                     -options.reflection);
            clamp(reflected);
            const double f_ref = eval(reflected);

            if (f_ref < values[best]) {
                // Expansion.
                Point expanded = affine(centroid, verts[worst],
                                        -options.expansion);
                clamp(expanded);
                const double f_exp = eval(expanded);
                if (f_exp < f_ref) {
                    verts[worst] = std::move(expanded);
                    values[worst] = f_exp;
                } else {
                    verts[worst] = std::move(reflected);
                    values[worst] = f_ref;
                }
                continue;
            }
            if (f_ref < values[second_worst]) {
                verts[worst] = std::move(reflected);
                values[worst] = f_ref;
                continue;
            }

            // Contraction toward the centroid.
            Point contracted = affine(centroid, verts[worst],
                                      options.contraction);
            clamp(contracted);
            const double f_con = eval(contracted);
            if (f_con < values[worst]) {
                verts[worst] = std::move(contracted);
                values[worst] = f_con;
                continue;
            }

            // Shrink toward the best vertex (stays inside the hull,
            // hence inside the box).
            for (std::size_t i = 0; i <= n; ++i) {
                if (i == best)
                    continue;
                verts[i] = affine(verts[best], verts[i],
                                  options.shrink);
                values[i] = eval(verts[i]);
            }
        }

        noteBest();
        result.converged = pass_converged;

        if (result.iterations >= options.maxIterations &&
            !pass_converged && !collapsed)
            break; // iteration budget exhausted mid-pass

        // A restarted pass that converged without improving on the
        // incumbent has nothing left to find; further restarts would
        // only replay it.
        if (pass > 0 && pass_converged &&
            pass_start_value - best_value < options.tolerance)
            break;
    }

    result.value = best_value;
    result.x = std::move(best_x);
    return result;
}

} // namespace sim
} // namespace redeye
