/**
 * @file
 * Task-accuracy evaluation (Top-N metric, Section V-A).
 *
 * Runs a labeled dataset through a (possibly noise-injected) network
 * and reports Top-1/Top-N accuracy. Optionally applies the raw
 * sensor sampling model (inverse gamma, Poisson shot noise, fixed
 * pattern noise) to every image first, as the paper does for its
 * input layer.
 */

#ifndef REDEYE_SIM_EVALUATOR_HH
#define REDEYE_SIM_EVALUATOR_HH

#include <cstddef>
#include <optional>

#include "core/exec.hh"
#include "data/shapes_dataset.hh"
#include "noise/sensor_noise.hh"

namespace redeye {

namespace nn {
class Network;
}

namespace sim {

/** Evaluation options. */
struct EvalOptions {
    std::size_t batchSize = 32;
    std::size_t topN = 5;
    std::size_t maxImages = 0; ///< 0 = whole dataset
    std::optional<noise::SensorParams> sensor; ///< raw sampling model
    std::uint64_t sensorSeed = 0x5e9505;

    /**
     * Worker threads for batch-parallel execution: 1 = serial
     * (default), 0 = auto (REDEYE_THREADS or hardware concurrency).
     * Results are bit-identical at any setting.
     */
    std::size_t threads = 1;
};

/** Accuracy results. */
struct EvalResult {
    double top1 = 0.0;
    double topN = 0.0;
    std::size_t images = 0;
};

/** Evaluate @p net on @p dataset. */
EvalResult evaluate(nn::Network &net, const data::Dataset &dataset,
                    const EvalOptions &options = EvalOptions{});

} // namespace sim
} // namespace redeye

#endif // REDEYE_SIM_EVALUATOR_HH
