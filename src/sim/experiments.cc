#include "sim/experiments.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"
#include "models/googlenet.hh"
#include "models/partition.hh"
#include "redeye/compiler.hh"
#include "sim/simplex.hh"

namespace redeye {
namespace sim {

std::vector<DepthRow>
googLeNetDepthSweep(const arch::RedEyeConfig &config,
                    std::size_t frame_size)
{
    auto net = models::buildGoogLeNet(frame_size);
    std::vector<DepthRow> rows;

    for (unsigned depth = 1; depth <= models::kGoogLeNetDepths;
         ++depth) {
        const auto layers = models::googLeNetAnalogLayers(depth);
        const auto prog = arch::compile(*net, layers, config);
        arch::RedEyeConfig cfg = config;
        cfg.columns = frame_size;
        arch::RedEyeModel model(prog, cfg);
        const auto est = model.estimateFrame();

        DepthRow row;
        row.depth = depth;
        row.analogMacs = prog.totalMacs();
        row.analogEnergyJ = est.energy.analogJ();
        row.totalEnergyJ = est.energy.totalJ();
        row.frameTimeS = est.analogTimeS;
        row.outputBytes = est.outputBytes;
        row.digitalTailMacs = static_cast<double>(
            models::digitalTailMacs(*net, layers));
        row.cutShape = prog.instructions().back().inShape;
        row.breakdown = est.energy;
        rows.push_back(row);
    }
    return rows;
}

double
convNetEnergyAtSnr(unsigned depth, double snr_db,
                   std::size_t frame_size)
{
    auto net = models::buildGoogLeNet(frame_size);
    const auto layers = models::googLeNetAnalogLayers(depth);
    arch::RedEyeConfig cfg;
    cfg.convSnrDb = snr_db;
    cfg.columns = frame_size;
    const auto prog = arch::compile(*net, layers, cfg);
    arch::RedEyeModel model(prog, cfg);
    const auto est = model.estimateFrame();
    return est.energy.macJ + est.energy.memoryJ +
           est.energy.comparatorJ;
}

double
quantizationEnergyAtBits(unsigned depth, unsigned bits,
                         std::size_t frame_size)
{
    auto net = models::buildGoogLeNet(frame_size);
    const auto layers = models::googLeNetAnalogLayers(depth);
    arch::RedEyeConfig cfg;
    cfg.adcBits = bits;
    cfg.columns = frame_size;
    const auto prog = arch::compile(*net, layers, cfg);
    arch::RedEyeModel model(prog, cfg);
    return model.estimateFrame().energy.readoutJ;
}

std::vector<AccuracyPoint>
accuracyVsSnr(nn::Network &net, InjectionHandles &handles,
              const data::Dataset &dataset,
              const std::vector<double> &snrs, unsigned bits,
              const EvalOptions &options)
{
    handles.setAdcBits(bits);
    std::vector<AccuracyPoint> points;
    for (double snr : snrs) {
        handles.setSnrDb(snr);
        const auto r = evaluate(net, dataset, options);
        points.push_back(AccuracyPoint{snr, bits, r.top1, r.topN});
    }
    return points;
}

std::vector<AccuracyPoint>
accuracyVsBits(nn::Network &net, InjectionHandles &handles,
               const data::Dataset &dataset,
               const std::vector<unsigned> &bits_list, double snr_db,
               const EvalOptions &options)
{
    handles.setSnrDb(snr_db);
    std::vector<AccuracyPoint> points;
    for (unsigned bits : bits_list) {
        handles.setAdcBits(bits);
        const auto r = evaluate(net, dataset, options);
        points.push_back(AccuracyPoint{snr_db, bits, r.top1,
                                       r.topN});
    }
    return points;
}

NoiseTuningResult
tuneNoiseParameters(nn::Network &net, InjectionHandles &handles,
                    const data::Dataset &dataset,
                    double target_accuracy, unsigned depth,
                    const EvalOptions &options)
{
    fatal_if(target_accuracy <= 0.0 || target_accuracy > 1.0,
             "target accuracy must be in (0, 1]");

    NoiseTuningResult best;
    best.energyJ = std::numeric_limits<double>::infinity();
    std::size_t evals = 0;

    // The quantization knob is small and discrete: scan it. For each
    // q, simplex-search the SNR (1-D after the evaluation insight of
    // Section III-D) for the cheapest setting that holds accuracy.
    for (unsigned bits = 2; bits <= 8; ++bits) {
        const double quant_e = quantizationEnergyAtBits(depth, bits);
        auto objective = [&](const std::vector<double> &x) {
            const double snr = std::clamp(x[0], 25.0, 70.0);
            handles.setSnrDb(snr);
            handles.setAdcBits(bits);
            ++evals;
            const auto r = evaluate(net, dataset, options);
            const double energy = convNetEnergyAtSnr(depth, snr) +
                                  quant_e;
            // Penalize accuracy shortfall steeply; energy in mJ.
            const double shortfall =
                std::max(0.0, target_accuracy - r.topN);
            return energy * 1e3 + shortfall * 1e3;
        };

        SimplexOptions sopt;
        sopt.maxIterations = 24;
        sopt.tolerance = 1e-4;
        const auto res = nelderMead(objective, {50.0}, {8.0}, sopt);

        const double snr = std::clamp(res.x[0], 25.0, 70.0);
        handles.setSnrDb(snr);
        handles.setAdcBits(bits);
        const auto check = evaluate(net, dataset, options);
        ++evals;
        if (check.topN + 1e-9 < target_accuracy)
            continue;
        const double energy = convNetEnergyAtSnr(depth, snr) +
                              quant_e;
        if (energy < best.energyJ) {
            best.snrDb = snr;
            best.adcBits = bits;
            best.accuracy = check.topN;
            best.energyJ = energy;
        }
    }
    best.evaluations = evals;
    fatal_if(!std::isfinite(best.energyJ),
             "no noise configuration reaches the target accuracy ",
             target_accuracy);
    return best;
}

} // namespace sim
} // namespace redeye
