#include "sim/evaluator.hh"

#include <algorithm>
#include <numeric>

#include "core/logging.hh"
#include "nn/network.hh"
#include "nn/softmax.hh"

namespace redeye {
namespace sim {

EvalResult
evaluate(nn::Network &net, const data::Dataset &dataset,
         const EvalOptions &options)
{
    fatal_if(dataset.size() == 0, "empty dataset");
    fatal_if(options.batchSize == 0, "batch size must be positive");

    const std::size_t limit =
        options.maxImages == 0
            ? dataset.size()
            : std::min(options.maxImages, dataset.size());

    std::optional<noise::SensorSamplingLayer> sensor;
    if (options.sensor) {
        sensor.emplace("@eval_sensor", *options.sensor,
                       Rng(options.sensorSeed));
    }

    ThreadPool pool(resolveThreadCount(options.threads));
    ExecContext ctx(pool);

    net.setTraining(false);
    EvalResult result;
    std::size_t top1_hits = 0;
    std::size_t topn_hits = 0;

    for (std::size_t start = 0; start < limit;
         start += options.batchSize) {
        const std::size_t count = std::min(options.batchSize,
                                           limit - start);
        std::vector<std::size_t> idx(count);
        std::iota(idx.begin(), idx.end(), start);
        data::Dataset batch = data::makeBatch(dataset, idx);

        Tensor input = batch.images;
        if (sensor) {
            std::vector<const Tensor *> ins{&batch.images};
            sensor->forward(ins, input, ctx);
        }

        const Tensor &scores = net.forward(input, ctx);
        const Shape &os = scores.shape();
        panic_if(os.h != 1 || os.w != 1,
                 "classifier output must be (n, classes, 1, 1), got ",
                 os.str());

        for (std::size_t i = 0; i < count; ++i) {
            const float *row = scores.data() + i * os.c;
            const std::int32_t label = batch.labels[i];
            if (nn::topNContains(row, os.c, label, 1))
                ++top1_hits;
            if (nn::topNContains(row, os.c, label, options.topN))
                ++topn_hits;
        }
        result.images += count;
    }

    result.top1 = static_cast<double>(top1_hits) /
                  static_cast<double>(result.images);
    result.topN = static_cast<double>(topn_hits) /
                  static_cast<double>(result.images);
    return result;
}

} // namespace sim
} // namespace redeye
